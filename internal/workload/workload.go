// Package workload synthesizes the evaluation workloads of the Splicer
// paper: heavy-tailed channel sizes matching the Lightning Network dataset
// statistics (min 10, mean 403, median 152 tokens), heavy-tailed transaction
// values mimicking the credit-card dataset Spider uses, Zipf-skewed
// sender/recipient selection from a processed LN trace, and an explicit
// circulation component guaranteed to induce the local deadlocks of §II-B.
package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
)

// LN channel-size dataset statistics quoted in §V-A.
const (
	LNChannelMin    = 10.0
	LNChannelMean   = 403.0
	LNChannelMedian = 152.0
)

// ChannelSizeDist samples channel sizes from a shifted log-normal calibrated
// so that the minimum, mean and median match the Lightning Network dataset
// statistics from the paper. Substitution note (see DESIGN.md): the paper
// only uses the dataset through these summary statistics plus the
// heavy-tailed shape, which a log-normal reproduces.
type ChannelSizeDist struct {
	src       *rng.Source
	mu, sigma float64
	min       float64
	scale     float64
}

// NewChannelSizeDist builds the LN-calibrated sampler. scale multiplies all
// sizes; the figure-7a/8a sweeps vary it to study the influence of channel
// size.
func NewChannelSizeDist(src *rng.Source, scale float64) *ChannelSizeDist {
	if scale <= 0 {
		panic("workload: channel size scale must be positive")
	}
	// Shifted log-normal X = min + Y, Y ~ LogNormal(mu, sigma).
	// Median: min + exp(mu) = 152            => mu = ln(142)
	// Mean:   min + exp(mu + sigma^2/2) = 403 => sigma = sqrt(2 ln(393/142))
	mu := math.Log(LNChannelMedian - LNChannelMin)
	sigma := math.Sqrt(2 * math.Log((LNChannelMean-LNChannelMin)/(LNChannelMedian-LNChannelMin)))
	return &ChannelSizeDist{src: src, mu: mu, sigma: sigma, min: LNChannelMin, scale: scale}
}

// Sample returns one channel size (funds per side).
func (d *ChannelSizeDist) Sample() float64 {
	return d.scale * (d.min + d.src.LogNormal(d.mu, d.sigma))
}

// CapacityFunc adapts the distribution to the topology generators, drawing
// an independent size per direction.
func (d *ChannelSizeDist) CapacityFunc() func() (float64, float64) {
	return func() (float64, float64) {
		s := d.Sample()
		return s, s
	}
}

// TxValueDist samples transaction values mimicking the credit-card dataset:
// a log-normal body with a Pareto tail, so that most payments are small but
// the trace "contains large-value transactions that the Lightning Network
// cannot handle" (paper §V-A).
type TxValueDist struct {
	src      *rng.Source
	mu       float64
	sigma    float64
	tailProb float64
	tailMin  float64
	tailA    float64
	scale    float64
}

// NewTxValueDist builds the sampler. mean controls the body's central
// tendency; the Fig. 7b/8b sweeps vary it via scale.
func NewTxValueDist(src *rng.Source, scale float64) *TxValueDist {
	if scale <= 0 {
		panic("workload: tx value scale must be positive")
	}
	return &TxValueDist{
		src:      src,
		mu:       math.Log(8), // body median 8 tokens
		sigma:    0.9,
		tailProb: 0.04, // 4% of payments are elephants
		tailMin:  120,
		tailA:    1.3,
		scale:    scale,
	}
}

// Sample returns one transaction value, always >= 1 token (the Min-TU).
func (d *TxValueDist) Sample() float64 {
	var v float64
	if d.src.Bool(d.tailProb) {
		v = d.src.Pareto(d.tailMin, d.tailA)
	} else {
		v = d.src.LogNormal(d.mu, d.sigma)
	}
	v *= d.scale
	if v < 1 {
		v = 1
	}
	return v
}

// Tx is a single payment demand D = (sender, recipient, value) arriving at
// time Arrival (seconds since simulation start).
type Tx struct {
	ID        int
	Sender    graph.NodeID
	Recipient graph.NodeID
	Value     float64
	Arrival   float64
	// Deadline is Arrival + timeout; payments not completed by then fail.
	Deadline float64
	// Hold > 0 makes the sender withhold the settlement preimage for this
	// many seconds after the last hop locks: every HTLC along the path stays
	// locked until the hold expires (or the deadline forces the unwind). This
	// is the channel-jamming/griefing primitive; 0 settles immediately.
	Hold float64
	// Adversarial marks attacker-issued payments. They are excluded from the
	// run's Generated totals (and hence TSR/throughput), which measure honest
	// demand only.
	Adversarial bool
}

// Config controls trace generation.
type Config struct {
	// Clients eligible as senders/recipients.
	Clients []graph.NodeID
	// Rate is the aggregate Poisson arrival rate (tx/sec).
	Rate float64
	// Duration of the trace in seconds.
	Duration float64
	// Timeout per transaction (paper: 3 s).
	Timeout float64
	// ZipfSkew controls endpoint popularity (0 = uniform).
	ZipfSkew float64
	// ValueScale feeds NewTxValueDist.
	ValueScale float64
	// CirculationFraction in [0,1): fraction of transactions drawn from a
	// fixed circulation pattern (A→B, C→B, B→A with imbalanced rates) that
	// provably induces local deadlocks under naive routing (§II-B). The
	// paper confirms its trace causes local deadlocks; this reproduces that
	// property deterministically.
	CirculationFraction float64
	// OnOff switches the arrival process from homogeneous Poisson to a
	// bursty on-off modulated Poisson process. Nil keeps the plain process
	// (and the exact draw sequence) unchanged.
	OnOff *OnOffConfig
}

// OnOffConfig parameterizes the bursty arrival process: exponentially
// distributed ON and OFF phases (a Markov-modulated Poisson process), with
// the aggregate rate scaled by OnFactor during ON phases and OffFactor
// during OFF phases. The trace starts in an ON phase, so a burst hits the
// network cold — the hardest case for rate-controller warm-up.
type OnOffConfig struct {
	// MeanOn and MeanOff are the mean phase durations in seconds.
	MeanOn  float64
	MeanOff float64
	// OnFactor (> 0) and OffFactor (>= 0, typically < 1) multiply Rate
	// during the respective phase; OffFactor 0 silences OFF phases entirely.
	OnFactor  float64
	OffFactor float64
}

// Validate checks the burst parameters.
func (o OnOffConfig) Validate() error {
	if o.MeanOn <= 0 || o.MeanOff <= 0 {
		return fmt.Errorf("workload: on/off mean durations must be positive, got %v/%v", o.MeanOn, o.MeanOff)
	}
	if o.OnFactor <= 0 {
		return fmt.Errorf("workload: OnFactor must be positive, got %v", o.OnFactor)
	}
	if o.OffFactor < 0 {
		return fmt.Errorf("workload: OffFactor must be >= 0, got %v", o.OffFactor)
	}
	return nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Clients) < 2 {
		return fmt.Errorf("workload: need >= 2 clients, got %d", len(c.Clients))
	}
	if c.Rate <= 0 {
		return fmt.Errorf("workload: rate must be positive, got %v", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: duration must be positive, got %v", c.Duration)
	}
	if c.Timeout <= 0 {
		return fmt.Errorf("workload: timeout must be positive, got %v", c.Timeout)
	}
	if c.ZipfSkew < 0 {
		return fmt.Errorf("workload: zipf skew must be >= 0, got %v", c.ZipfSkew)
	}
	if c.ValueScale <= 0 {
		return fmt.Errorf("workload: value scale must be positive, got %v", c.ValueScale)
	}
	if c.CirculationFraction < 0 || c.CirculationFraction >= 1 {
		return fmt.Errorf("workload: circulation fraction must be in [0,1), got %v", c.CirculationFraction)
	}
	if c.OnOff != nil {
		if err := c.OnOff.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// arrivalProcess walks the arrival time axis: homogeneous Poisson by
// default, piecewise-exponential (exact, via redraw-at-boundary — the
// process is memoryless) when OnOff is set.
type arrivalProcess struct {
	src      *rng.Source
	rate     float64
	onOff    *OnOffConfig
	on       bool
	phaseEnd float64
}

func newArrivalProcess(src *rng.Source, cfg Config) *arrivalProcess {
	a := &arrivalProcess{src: src, rate: cfg.Rate, onOff: cfg.OnOff}
	if a.onOff != nil {
		a.on = true
		a.phaseEnd = src.Exponential(1 / a.onOff.MeanOn)
	}
	return a
}

// next returns the first arrival after `now`.
func (a *arrivalProcess) next(now float64) float64 {
	if a.onOff == nil {
		return now + a.src.Exponential(a.rate)
	}
	for {
		rate := a.rate * a.onOff.OffFactor
		if a.on {
			rate = a.rate * a.onOff.OnFactor
		}
		t := math.Inf(1)
		if rate > 0 {
			t = now + a.src.Exponential(rate)
		}
		if t < a.phaseEnd {
			return t
		}
		// The candidate falls past the phase boundary: advance to the
		// boundary and redraw at the new phase's rate (exact for a
		// piecewise-constant-rate Poisson process).
		now = a.phaseEnd
		a.on = !a.on
		mean := a.onOff.MeanOff
		if a.on {
			mean = a.onOff.MeanOn
		}
		a.phaseEnd = now + a.src.Exponential(1/mean)
	}
}

// Generate produces a reproducible transaction trace sorted by arrival time.
func Generate(src *rng.Source, cfg Config) ([]Tx, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arrivalSrc := src.Split(1)
	endpointSrc := src.Split(2)
	valueSrc := src.Split(3)
	circSrc := src.Split(4)

	values := NewTxValueDist(valueSrc, cfg.ValueScale)
	zipf := rng.NewZipf(endpointSrc, len(cfg.Clients), cfg.ZipfSkew)

	// Circulation triple: pick three distinct popular clients; payments
	// cycle A→B at 1x, C→B at 2x, B→A at 2x (Fig. 1(b) rates), leaving C
	// drained — a local deadlock under naive shortest-path routing.
	circ := circulationPattern(cfg.Clients)

	arrivals := newArrivalProcess(arrivalSrc, cfg)

	var txs []Tx
	now := 0.0
	id := 0
	for {
		now = arrivals.next(now)
		if now >= cfg.Duration {
			break
		}
		var s, r graph.NodeID
		var val float64
		if circSrc.Bool(cfg.CirculationFraction) {
			s, r, val = circ.next(circSrc)
			val *= cfg.ValueScale
		} else {
			si := zipf.Next()
			ri := zipf.Next()
			for ri == si {
				ri = endpointSrc.IntN(len(cfg.Clients))
			}
			s, r = cfg.Clients[si], cfg.Clients[ri]
			val = values.Sample()
		}
		txs = append(txs, Tx{
			ID:        id,
			Sender:    s,
			Recipient: r,
			Value:     val,
			Arrival:   now,
			Deadline:  now + cfg.Timeout,
		})
		id++
	}
	if len(txs) == 0 {
		return nil, fmt.Errorf("workload: trace is empty (rate %v, duration %v)", cfg.Rate, cfg.Duration)
	}
	return txs, nil
}

// FlashConfig parameterizes a flash-crowd demand shock: a sudden
// arrival-rate spike concentrated on one region of the client space. The
// spike superposes on a base trace — two independent Poisson processes sum
// to a Poisson process — so during [Start, Start+Duration) the aggregate
// rate targeting the region is SpikeFactor × the base rate.
type FlashConfig struct {
	// Start and Duration bound the shock window in seconds.
	Start    float64
	Duration float64
	// SpikeFactor >= 1 multiplies the base rate during the window; the extra
	// (SpikeFactor−1)·Rate arrivals are what GenerateFlash emits.
	SpikeFactor float64
	// RegionFraction in (0,1] sizes the targeted region: a contiguous span of
	// the client slice whose members receive all spike payments.
	RegionFraction float64
	// IDBase is the first transaction ID assigned; spike IDs must not collide
	// with the base trace's.
	IDBase int
}

// Validate checks the shock parameters.
func (f FlashConfig) Validate() error {
	if f.Start < 0 || f.Duration <= 0 {
		return fmt.Errorf("workload: flash window must have start >= 0 and positive duration, got %v+%v", f.Start, f.Duration)
	}
	if f.SpikeFactor < 1 {
		return fmt.Errorf("workload: flash spike factor must be >= 1, got %v", f.SpikeFactor)
	}
	if f.RegionFraction <= 0 || f.RegionFraction > 1 {
		return fmt.Errorf("workload: flash region fraction must be in (0,1], got %v", f.RegionFraction)
	}
	return nil
}

// GenerateFlash produces the spike component of a flash crowd: honest
// payments (they count toward TSR) at rate (SpikeFactor−1)·base.Rate during
// the window, every recipient drawn from one contiguous region of the
// clients, senders drawn uniformly from everywhere. The result is sorted by
// arrival; it is empty when SpikeFactor is 1.
func GenerateFlash(src *rng.Source, base Config, f FlashConfig) ([]Tx, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	extraRate := (f.SpikeFactor - 1) * base.Rate
	if extraRate <= 0 {
		return nil, nil
	}
	arrivalSrc := src.Split(1)
	endpointSrc := src.Split(2)
	valueSrc := src.Split(3)
	values := NewTxValueDist(valueSrc, base.ValueScale)

	regionSize := int(f.RegionFraction * float64(len(base.Clients)))
	if regionSize < 1 {
		regionSize = 1
	}
	regionStart := 0
	if n := len(base.Clients) - regionSize; n > 0 {
		regionStart = src.IntN(n + 1)
	}
	region := base.Clients[regionStart : regionStart+regionSize]

	var txs []Tx
	id := f.IDBase
	end := f.Start + f.Duration
	for now := f.Start + arrivalSrc.Exponential(extraRate); now < end; now += arrivalSrc.Exponential(extraRate) {
		r := region[endpointSrc.IntN(len(region))]
		s := base.Clients[endpointSrc.IntN(len(base.Clients))]
		for s == r {
			s = base.Clients[endpointSrc.IntN(len(base.Clients))]
		}
		txs = append(txs, Tx{
			ID:        id,
			Sender:    s,
			Recipient: r,
			Value:     values.Sample(),
			Arrival:   now,
			Deadline:  now + base.Timeout,
		})
		id++
	}
	return txs, nil
}

// circulation reproduces the Fig. 1(b) imbalanced-rate pattern over the
// first three clients: A and C pay B, B pays A, with C receiving nothing.
type circulation struct {
	a, b, c graph.NodeID
}

func circulationPattern(clients []graph.NodeID) circulation {
	return circulation{a: clients[0], b: clients[1], c: clients[2%len(clients)]}
}

// next picks one circulation payment. Weights 1:2:2 reproduce the paper's
// A→B 1 token/s, C→B 2 token/s, B→A 2 token/s rates.
func (c circulation) next(src *rng.Source) (s, r graph.NodeID, val float64) {
	switch src.IntN(5) {
	case 0:
		return c.a, c.b, 1
	case 1, 2:
		return c.c, c.b, 1
	default:
		return c.b, c.a, 1
	}
}

// Stats summarizes a slice of samples; used in tests and the experiment
// harness to report workload characteristics.
type Stats struct {
	Min, Max, Mean, Median float64
	N                      int
}

// Summarize computes summary statistics over values.
func Summarize(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Stats{
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		Median: sorted[len(sorted)/2],
		N:      len(sorted),
	}
}
