package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/rng"
)

func testConfig() Config {
	clients := make([]graph.NodeID, 30)
	for i := range clients {
		clients[i] = graph.NodeID(i)
	}
	return Config{
		Clients:             clients,
		Rate:                50,
		Duration:            4,
		Timeout:             3,
		ZipfSkew:            0.8,
		ValueScale:          1,
		CirculationFraction: 0.2,
	}
}

func TestTraceRoundTrip(t *testing.T) {
	txs, err := Generate(rng.New(3), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, txs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, txs) {
		t.Fatalf("trace round trip diverged: %d vs %d txs", len(got), len(txs))
	}
	if MaxNode(got) >= 30 || MaxNode(got) < 0 {
		t.Fatalf("MaxNode = %d out of client range", MaxNode(got))
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	header := "id,sender,recipient,value,arrival,deadline\n"
	cases := map[string]string{
		"empty":             "",
		"no header":         "0,1,2,5,0.5,3.5\n",
		"no rows":           header,
		"bad float":         header + "0,1,2,x,0.5,3.5\n",
		"self payment":      header + "0,1,1,5,0.5,3.5\n",
		"negative endpoint": header + "0,-1,2,5,0.5,3.5\n",
		"zero value":        header + "0,1,2,0,0.5,3.5\n",
		"deadline early":    header + "0,1,2,5,0.5,0.1\n",
		"unsorted":          header + "0,1,2,5,1.5,4.5\n1,2,3,5,0.5,3.5\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted malformed input", name)
		}
	}
}

func TestOnOffArrivalsBursty(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 40
	cfg.OnOff = &OnOffConfig{MeanOn: 1, MeanOff: 1, OnFactor: 4, OffFactor: 0}
	bursty, err := Generate(rng.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With OffFactor 0 and symmetric 1s phases, the effective rate is about
	// half of 4×Rate: the count should sit far from both plain Rate·D and
	// peak 4·Rate·D.
	n := float64(len(bursty))
	if n < 0.8*cfg.Rate*cfg.Duration || n > 3.2*cfg.Rate*cfg.Duration {
		t.Fatalf("bursty trace has %v arrivals for rate %v over %vs", n, cfg.Rate, cfg.Duration)
	}
	// Burstiness shows up as a heavy tail of inter-arrival gaps (OFF phases):
	// the max gap should dwarf the mean gap by far more than a plain Poisson
	// process would allow.
	maxGap, prev := 0.0, 0.0
	for _, tx := range bursty {
		if g := tx.Arrival - prev; g > maxGap {
			maxGap = g
		}
		prev = tx.Arrival
	}
	meanGap := prev / n
	if maxGap < 10*meanGap {
		t.Fatalf("max gap %v vs mean %v: arrivals not bursty", maxGap, meanGap)
	}
	// Determinism.
	again, err := Generate(rng.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, bursty) {
		t.Fatal("bursty generation is not deterministic")
	}
}

// TestOnOffNilKeepsDrawSequence pins that adding the OnOff field did not
// perturb the default generator: traces are a seed-stable contract that the
// golden figure fixtures depend on.
func TestOnOffNilKeepsDrawSequence(t *testing.T) {
	a, err := Generate(rng.New(4), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.OnOff = nil
	b, err := Generate(rng.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("nil OnOff changed the generated trace")
	}
}

func TestOnOffValidate(t *testing.T) {
	cfg := testConfig()
	cfg.OnOff = &OnOffConfig{MeanOn: 0, MeanOff: 1, OnFactor: 2, OffFactor: 0}
	if _, err := Generate(rng.New(1), cfg); err == nil {
		t.Fatal("accepted MeanOn=0")
	}
	cfg.OnOff = &OnOffConfig{MeanOn: 1, MeanOff: 1, OnFactor: 0, OffFactor: 0}
	if _, err := Generate(rng.New(1), cfg); err == nil {
		t.Fatal("accepted OnFactor=0")
	}
	cfg.OnOff = &OnOffConfig{MeanOn: 1, MeanOff: 1, OnFactor: 2, OffFactor: -1}
	if _, err := Generate(rng.New(1), cfg); err == nil {
		t.Fatal("accepted negative OffFactor")
	}
}
