package sweep

import (
	"math"

	"github.com/splicer-pcn/splicer/internal/pcn"
)

// Stats summarizes one metric across the seeds of a group. NaN samples
// (e.g. MeanQueueDelay under a scheme without queues, MeanDelay with zero
// completions) are excluded; N counts the samples folded in.
type Stats struct {
	N    int
	Mean float64
	// Std is the sample (n−1) standard deviation; 0 when N < 2.
	Std float64
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval, 1.96·Std/√N; 0 when N < 2.
	CI95 float64
}

// newStats folds samples in slice order so the result is bit-stable for a
// fixed input order.
func newStats(samples []float64) Stats {
	var s Stats
	sum := 0.0
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		s.N++
		sum += v
	}
	if s.N == 0 {
		s.Mean = math.NaN()
		return s
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = 1.96 * s.Std / math.Sqrt(float64(s.N))
	return s
}

// Summary aggregates one (Scheme, Axis, X, Label) group across its seeds.
type Summary struct {
	Scheme pcn.Scheme
	Axis   string
	X      float64
	Label  string
	// Seeds is the number of successful cells aggregated; Failed counts
	// cells whose run errored (excluded from the stats).
	Seeds  int
	Failed int

	TSR            Stats
	Throughput     Stats // normalized throughput
	MeanDelay      Stats
	MeanQueueDelay Stats
	TotalFees      Stats
	MeanImbalance  Stats

	// Route-computation effectiveness (precomputation/caching telemetry, not
	// paper metrics): the RouteCache hit rate in [0,1] (NaN when no route was
	// ever requested) and the per-run label-tier activity.
	CacheHitRate Stats
	LabelServed  Stats
	LabelRepairs Stats
}

type groupKey struct {
	scheme pcn.Scheme
	axis   string
	x      float64
	label  string
}

// Aggregate groups cell results by (Scheme, Axis, X, Label) and summarizes
// each metric across the group's seeds. Groups appear in first-appearance
// order and samples fold in result order, so for a fixed cell list the
// output is identical regardless of how many workers produced the results.
func Aggregate(results []CellResult) []Summary {
	type group struct {
		key     groupKey
		failed  int
		samples map[string][]float64
	}
	order := []groupKey{}
	groups := map[groupKey]*group{}
	for _, r := range results {
		k := groupKey{r.Cell.Scheme, r.Cell.Axis, r.Cell.X, r.Cell.Label}
		g, ok := groups[k]
		if !ok {
			g = &group{key: k, samples: map[string][]float64{}}
			groups[k] = g
			order = append(order, k)
		}
		if r.Err != nil {
			g.failed++
			continue
		}
		g.samples["tsr"] = append(g.samples["tsr"], r.Result.TSR)
		g.samples["tput"] = append(g.samples["tput"], r.Result.NormalizedThroughput)
		g.samples["delay"] = append(g.samples["delay"], r.Result.MeanDelay)
		g.samples["qdelay"] = append(g.samples["qdelay"], r.Result.MeanQueueDelay)
		g.samples["fees"] = append(g.samples["fees"], r.Result.TotalFees)
		g.samples["imb"] = append(g.samples["imb"], r.Result.MeanImbalance)
		hitRate := math.NaN()
		if lookups := r.Result.RouteCacheHits + r.Result.RouteCacheMisses; lookups > 0 {
			hitRate = float64(r.Result.RouteCacheHits) / float64(lookups)
		}
		g.samples["cache_hit"] = append(g.samples["cache_hit"], hitRate)
		g.samples["label_served"] = append(g.samples["label_served"], float64(r.Result.LabelServed))
		g.samples["label_repairs"] = append(g.samples["label_repairs"], float64(r.Result.LabelRepairs))
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		g := groups[k]
		out = append(out, Summary{
			Scheme:         k.scheme,
			Axis:           k.axis,
			X:              k.x,
			Label:          k.label,
			Seeds:          len(g.samples["tsr"]),
			Failed:         g.failed,
			TSR:            newStats(g.samples["tsr"]),
			Throughput:     newStats(g.samples["tput"]),
			MeanDelay:      newStats(g.samples["delay"]),
			MeanQueueDelay: newStats(g.samples["qdelay"]),
			TotalFees:      newStats(g.samples["fees"]),
			MeanImbalance:  newStats(g.samples["imb"]),
			CacheHitRate:   newStats(g.samples["cache_hit"]),
			LabelServed:    newStats(g.samples["label_served"]),
			LabelRepairs:   newStats(g.samples["label_repairs"]),
		})
	}
	return out
}
