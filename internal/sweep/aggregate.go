package sweep

import (
	"math"

	"github.com/splicer-pcn/splicer/internal/pcn"
)

// Stats summarizes one metric across the seeds of a group. NaN samples
// (e.g. MeanQueueDelay under a scheme without queues, MeanDelay with zero
// completions) are excluded; N counts the samples folded in.
type Stats struct {
	N    int
	Mean float64
	// Std is the sample (n−1) standard deviation; 0 when N < 2.
	Std float64
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval, 1.96·Std/√N; 0 when N < 2.
	CI95 float64
}

// newStats folds samples in slice order so the result is bit-stable for a
// fixed input order.
func newStats(samples []float64) Stats {
	var s Stats
	sum := 0.0
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		s.N++
		sum += v
	}
	if s.N == 0 {
		s.Mean = math.NaN()
		return s
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = 1.96 * s.Std / math.Sqrt(float64(s.N))
	return s
}

// Summary aggregates one (Scheme, Axis, X, Label) group across its seeds.
type Summary struct {
	Scheme pcn.Scheme
	Axis   string
	X      float64
	Label  string
	// Seeds is the number of successful cells aggregated; Failed counts
	// cells whose run errored (excluded from the stats).
	Seeds  int
	Failed int

	TSR            Stats
	Throughput     Stats // normalized throughput
	MeanDelay      Stats
	MeanQueueDelay Stats
	TotalFees      Stats
	MeanImbalance  Stats

	// Route-computation effectiveness (precomputation/caching telemetry, not
	// paper metrics): the RouteCache hit rate in [0,1] (NaN when no route was
	// ever requested) and the per-run label-tier activity.
	CacheHitRate Stats
	LabelServed  Stats
	LabelRepairs Stats

	// Failure-aware retry activity (zero-N Stats unless retries were armed).
	RetryAttempts  Stats
	RetryRecovered Stats
	RetryExhausted Stats

	// FailureReasons breaks the group's failures down by abort reason: mean
	// counts per seed keyed by reason (e.g. "no_funds", "deadline",
	// "no_flow"). A seed that never recorded a reason contributes a zero
	// sample for it, so means stay comparable across groups. Nil when no cell
	// in the group recorded any attributed failure.
	FailureReasons map[string]Stats
}

type groupKey struct {
	scheme pcn.Scheme
	axis   string
	x      float64
	label  string
}

// Aggregate groups cell results by (Scheme, Axis, X, Label) and summarizes
// each metric across the group's seeds. Groups appear in first-appearance
// order and samples fold in result order, so for a fixed cell list the
// output is identical regardless of how many workers produced the results.
func Aggregate(results []CellResult) []Summary {
	type group struct {
		key     groupKey
		failed  int
		samples map[string][]float64
		// reasons holds per-reason failure counts, one sample per successful
		// cell. Samples are appended under an "n" cursor so cells that never
		// saw a reason pad it with zeros (see the padding pass below).
		reasons map[string][]float64
		n       int // successful cells folded so far
	}
	order := []groupKey{}
	groups := map[groupKey]*group{}
	for _, r := range results {
		k := groupKey{r.Cell.Scheme, r.Cell.Axis, r.Cell.X, r.Cell.Label}
		g, ok := groups[k]
		if !ok {
			g = &group{key: k, samples: map[string][]float64{}}
			groups[k] = g
			order = append(order, k)
		}
		if r.Err != nil {
			g.failed++
			continue
		}
		g.samples["tsr"] = append(g.samples["tsr"], r.Result.TSR)
		g.samples["tput"] = append(g.samples["tput"], r.Result.NormalizedThroughput)
		g.samples["delay"] = append(g.samples["delay"], r.Result.MeanDelay)
		g.samples["qdelay"] = append(g.samples["qdelay"], r.Result.MeanQueueDelay)
		g.samples["fees"] = append(g.samples["fees"], r.Result.TotalFees)
		g.samples["imb"] = append(g.samples["imb"], r.Result.MeanImbalance)
		hitRate := math.NaN()
		if lookups := r.Result.RouteCacheHits + r.Result.RouteCacheMisses; lookups > 0 {
			hitRate = float64(r.Result.RouteCacheHits) / float64(lookups)
		}
		g.samples["cache_hit"] = append(g.samples["cache_hit"], hitRate)
		g.samples["label_served"] = append(g.samples["label_served"], float64(r.Result.LabelServed))
		g.samples["label_repairs"] = append(g.samples["label_repairs"], float64(r.Result.LabelRepairs))
		g.samples["retry_attempts"] = append(g.samples["retry_attempts"], float64(r.Result.RetryAttempts))
		g.samples["retry_recovered"] = append(g.samples["retry_recovered"], float64(r.Result.RetryRecovered))
		g.samples["retry_exhausted"] = append(g.samples["retry_exhausted"], float64(r.Result.RetryExhausted))
		// Per-reason counts: pad every known reason up to this cell's index
		// before appending, so a reason first seen at cell i carries i zero
		// samples for the earlier cells (means stay per-seed comparable, and
		// the fold is order-stable for a fixed result order).
		for reason, c := range r.Result.FailureReasons {
			if g.reasons == nil {
				g.reasons = map[string][]float64{}
			}
			for len(g.reasons[reason]) < g.n {
				g.reasons[reason] = append(g.reasons[reason], 0)
			}
			g.reasons[reason] = append(g.reasons[reason], float64(c))
		}
		g.n++
		for reason := range g.reasons {
			for len(g.reasons[reason]) < g.n {
				g.reasons[reason] = append(g.reasons[reason], 0)
			}
		}
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		g := groups[k]
		out = append(out, Summary{
			Scheme:         k.scheme,
			Axis:           k.axis,
			X:              k.x,
			Label:          k.label,
			Seeds:          len(g.samples["tsr"]),
			Failed:         g.failed,
			TSR:            newStats(g.samples["tsr"]),
			Throughput:     newStats(g.samples["tput"]),
			MeanDelay:      newStats(g.samples["delay"]),
			MeanQueueDelay: newStats(g.samples["qdelay"]),
			TotalFees:      newStats(g.samples["fees"]),
			MeanImbalance:  newStats(g.samples["imb"]),
			CacheHitRate:   newStats(g.samples["cache_hit"]),
			LabelServed:    newStats(g.samples["label_served"]),
			LabelRepairs:   newStats(g.samples["label_repairs"]),
			RetryAttempts:  newStats(g.samples["retry_attempts"]),
			RetryRecovered: newStats(g.samples["retry_recovered"]),
			RetryExhausted: newStats(g.samples["retry_exhausted"]),
			FailureReasons: reasonStats(g.reasons),
		})
	}
	return out
}

// reasonStats summarizes the per-reason count samples (nil in, nil out).
func reasonStats(reasons map[string][]float64) map[string]Stats {
	if len(reasons) == 0 {
		return nil
	}
	out := make(map[string]Stats, len(reasons))
	for reason, samples := range reasons {
		out[reason] = newStats(samples)
	}
	return out
}
