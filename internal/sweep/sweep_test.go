package sweep

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// testCell builds a small self-contained simulation cell.
func testCell(scheme pcn.Scheme, seed uint64, x float64) Cell {
	return Cell{
		Scheme: scheme,
		Seed:   seed,
		Axis:   "value_scale",
		X:      x,
		Build: func() (*graph.Graph, []workload.Tx, pcn.Config, error) {
			src := rng.New(seed)
			g, err := topology.WattsStrogatz(src.Split(1), 30, 4, 0.2, func() (float64, float64) { return 200, 200 })
			if err != nil {
				return nil, nil, pcn.Config{}, err
			}
			clients := make([]graph.NodeID, g.NumNodes())
			for i := range clients {
				clients[i] = graph.NodeID(i)
			}
			trace, err := workload.Generate(src.Split(2), workload.Config{
				Clients: clients, Rate: 30, Duration: 1.5, Timeout: 3,
				ZipfSkew: 0.8, ValueScale: x, CirculationFraction: 0.2,
			})
			if err != nil {
				return nil, nil, pcn.Config{}, err
			}
			cfg := pcn.NewConfig(scheme)
			cfg.NumHubCandidates = 6
			return g, trace, cfg, nil
		},
	}
}

func testGrid() []Cell {
	var cells []Cell
	for _, x := range []float64{1, 2} {
		for _, scheme := range []pcn.Scheme{pcn.SchemeSplicer, pcn.SchemeShortestPath} {
			for _, seed := range []uint64{3, 4, 5} {
				cells = append(cells, testCell(scheme, seed, x))
			}
		}
	}
	return cells
}

// renderResults canonicalizes per-cell outcomes for byte-level comparison
// (the Cell's Build closure is a pointer and must not participate).
func renderResults(results []CellResult) string {
	out := ""
	for _, r := range results {
		out += fmt.Sprintf("%v/%d/%s/%g/%s %+v err=%v\n",
			r.Cell.Scheme, r.Cell.Seed, r.Cell.Axis, r.Cell.X, r.Cell.Label, r.Result, r.Err)
	}
	return out
}

// render canonicalizes summaries for byte-level comparison.
func render(v interface{}) string { return fmt.Sprintf("%+v", v) }

// TestDeterministicAcrossWorkerCounts: the same grid must produce
// byte-identical per-cell results and aggregate stats for any worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := Run(testGrid(), 1)
	if err := FirstErr(ref); err != nil {
		t.Fatal(err)
	}
	refResults, refSummaries := renderResults(ref), render(Aggregate(ref))
	for _, workers := range []int{2, 4, 0} {
		got := Run(testGrid(), workers)
		if r := renderResults(got); r != refResults {
			t.Fatalf("workers=%d: per-cell results diverged from workers=1", workers)
		}
		if s := render(Aggregate(got)); s != refSummaries {
			t.Fatalf("workers=%d: aggregate summaries diverged from workers=1", workers)
		}
	}
}

// TestAggregateGroups: 3 seeds per (scheme, x) group → 4 groups of N=3, in
// first-appearance order.
func TestAggregateGroups(t *testing.T) {
	results := Run(testGrid(), 0)
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	sums := Aggregate(results)
	if len(sums) != 4 {
		t.Fatalf("got %d groups, want 4", len(sums))
	}
	want := []struct {
		scheme pcn.Scheme
		x      float64
	}{
		{pcn.SchemeSplicer, 1}, {pcn.SchemeShortestPath, 1},
		{pcn.SchemeSplicer, 2}, {pcn.SchemeShortestPath, 2},
	}
	for i, s := range sums {
		if s.Scheme != want[i].scheme || s.X != want[i].x {
			t.Fatalf("group %d = (%v, %g), want (%v, %g)", i, s.Scheme, s.X, want[i].scheme, want[i].x)
		}
		if s.Seeds != 3 || s.Failed != 0 {
			t.Fatalf("group %d: Seeds=%d Failed=%d, want 3/0", i, s.Seeds, s.Failed)
		}
		if s.TSR.N != 3 || s.TSR.Mean < 0 || s.TSR.Mean > 1 {
			t.Fatalf("group %d: bad TSR stats %+v", i, s.TSR)
		}
		if s.TSR.Std > 0 && s.TSR.CI95 <= 0 {
			t.Fatalf("group %d: Std=%g but CI95=%g", i, s.TSR.Std, s.TSR.CI95)
		}
	}
}

// TestStatsMath checks mean/stddev/CI against hand-computed values and the
// NaN-exclusion rule.
func TestStatsMath(t *testing.T) {
	s := newStats([]float64{1, 2, 3, math.NaN()})
	if s.N != 3 || math.Abs(s.Mean-2) > 1e-12 {
		t.Fatalf("stats = %+v, want N=3 Mean=2", s)
	}
	if math.Abs(s.Std-1) > 1e-12 {
		t.Fatalf("Std = %g, want 1", s.Std)
	}
	if wantCI := 1.96 / math.Sqrt(3); math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI95 = %g, want %g", s.CI95, wantCI)
	}
	if one := newStats([]float64{5}); one.N != 1 || one.Mean != 5 || one.Std != 0 || one.CI95 != 0 {
		t.Fatalf("single-sample stats = %+v", one)
	}
	if empty := newStats([]float64{math.NaN()}); empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("all-NaN stats = %+v", empty)
	}
}

// TestErrorPropagation: a failing cell surfaces through FirstErr and is
// counted (not folded) by Aggregate.
func TestErrorPropagation(t *testing.T) {
	bad := Cell{Scheme: pcn.SchemeSplicer, Seed: 9, Axis: "value_scale", X: 1,
		Build: func() (*graph.Graph, []workload.Tx, pcn.Config, error) {
			return nil, nil, pcn.Config{}, fmt.Errorf("boom")
		}}
	cells := []Cell{testCell(pcn.SchemeSplicer, 3, 1), bad}
	results := Run(cells, 2)
	if err := FirstErr(results); err == nil {
		t.Fatal("FirstErr missed the failing cell")
	}
	sums := Aggregate(results)
	if len(sums) != 1 {
		t.Fatalf("got %d groups, want 1 (same key)", len(sums))
	}
	if sums[0].Seeds != 1 || sums[0].Failed != 1 {
		t.Fatalf("Seeds=%d Failed=%d, want 1/1", sums[0].Seeds, sums[0].Failed)
	}
	if RunCell(Cell{}).Err == nil {
		t.Fatal("RunCell accepted a cell without Build")
	}
}

// TestPoisonedCellDoesNotKillSweep pins the panic-recovery contract: one
// cell whose hook panics fails in place — panic value and stack captured in
// its CellResult.Err — while the other 99 cells of the sweep complete
// normally on a parallel pool.
func TestPoisonedCellDoesNotKillSweep(t *testing.T) {
	const total, poisoned = 100, 41
	cells := make([]Cell, total)
	for i := range cells {
		i := i
		if i == poisoned {
			cells[i] = Cell{Scheme: pcn.SchemeSplicer, Seed: uint64(i), Axis: "poison", X: 1,
				Run: func() (pcn.Result, error) { panic("poisoned cell") }}
			continue
		}
		cells[i] = Cell{Scheme: pcn.SchemeSplicer, Seed: uint64(i), Axis: "poison", X: 0,
			Run: func() (pcn.Result, error) { return pcn.Result{Generated: i}, nil }}
	}
	results := Run(cells, 4)
	for i, r := range results {
		if i == poisoned {
			if r.Err == nil {
				t.Fatal("poisoned cell reported no error")
			}
			msg := r.Err.Error()
			if !strings.Contains(msg, "poisoned cell") {
				t.Fatalf("panic value lost: %v", r.Err)
			}
			if !strings.Contains(msg, "sweep_test.go") {
				t.Fatalf("panic stack lost: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("healthy cell %d failed: %v", i, r.Err)
		}
		if r.Result.Generated != i {
			t.Fatalf("cell %d result scrambled: %+v", i, r.Result)
		}
	}
	if err := FirstErr(results); err == nil || !strings.Contains(err.Error(), "poisoned cell") {
		t.Fatalf("FirstErr missed the poisoned cell: %v", err)
	}
}

// TestBuildPanicRecovered covers the Build-path panic (NewNetwork and the
// simulation itself run under the same recover).
func TestBuildPanicRecovered(t *testing.T) {
	r := RunCell(Cell{Scheme: pcn.SchemeSplicer, Seed: 1, Axis: "poison", X: 1,
		Build: func() (*graph.Graph, []workload.Tx, pcn.Config, error) { panic(fmt.Errorf("bad build")) }})
	if r.Err == nil || !strings.Contains(r.Err.Error(), "bad build") {
		t.Fatalf("Build panic not recovered into Err: %v", r.Err)
	}
}

// TestCellParallelismIsOutputInvariant pins the per-cell Parallelism knob:
// the same cell with speculative planning workers produces a byte-identical
// result to the serial build.
func TestCellParallelismIsOutputInvariant(t *testing.T) {
	serial := RunCell(testCell(pcn.SchemeSplicer, 3, 1))
	par := testCell(pcn.SchemeSplicer, 3, 1)
	par.Parallelism = 4
	parallel := RunCell(par)
	if serial.Err != nil || parallel.Err != nil {
		t.Fatalf("cell errors: %v / %v", serial.Err, parallel.Err)
	}
	if fmt.Sprintf("%+v", serial.Result) != fmt.Sprintf("%+v", parallel.Result) {
		t.Fatalf("parallel cell diverged:\nserial:   %+v\nparallel: %+v", serial.Result, parallel.Result)
	}
}
