// Package sweep runs simulation grids — scheme × seed × parameter cells —
// on a bounded worker pool and aggregates the per-cell results into
// mean/stddev/95%-CI summaries.
//
// Each cell materializes its own Graph, trace and Network via its Build
// hook, so workers share no mutable state and a sweep is embarrassingly
// parallel. Run returns results in cell order regardless of scheduling, and
// Aggregate folds them in that fixed order, so a sweep's output is
// byte-identical for any worker count.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Cell is one simulation of a sweep grid. Scheme, Seed and the axis fields
// label the cell for grouping; Build materializes the cell's private inputs.
type Cell struct {
	Scheme pcn.Scheme
	Seed   uint64
	// Axis names the swept parameter (e.g. "channel_scale") and X is its
	// value for this cell. Label carries non-numeric choices (e.g. a
	// scheduler name); cells with equal (Scheme, Axis, X, Label) aggregate
	// into one summary across seeds.
	Axis  string
	X     float64
	Label string
	// Build returns a fresh graph, trace and config. It must not share
	// mutable state with other cells: the returned graph is owned (and
	// mutated) by the cell's Network.
	Build func() (*graph.Graph, []workload.Tx, pcn.Config, error)
	// Run, when set, replaces the default build→NewNetwork→Run pipeline
	// entirely (Build is ignored). Dynamic-network cells use it to drive the
	// network through a dynamics.Driver instead of a pre-generated trace.
	// Like Build, it must not share mutable state with other cells.
	Run func() (pcn.Result, error)
	// Parallelism overrides the built config's speculative route-planning
	// worker count (pcn.Config.Parallelism) for Build-path cells; 0 keeps
	// whatever Build returned. Run-hook cells own their full pipeline and
	// carry the knob in their spec instead. Outputs are byte-identical at
	// any setting, so aggregation stays worker-count- and
	// parallelism-invariant.
	Parallelism int
}

// CellResult pairs a cell with its simulation outcome.
type CellResult struct {
	Cell   Cell
	Result pcn.Result
	Err    error
}

// RunCell executes a single cell synchronously. A panic in the cell's
// Build/Run hook (or anywhere downstream in its simulation) is recovered
// into CellResult.Err — value and stack preserved — so one poisoned cell
// fails in place instead of killing a whole sweep's process.
func RunCell(c Cell) (out CellResult) {
	out = CellResult{Cell: c}
	defer func() {
		if r := recover(); r != nil {
			out.Err = fmt.Errorf("sweep: cell panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if c.Run != nil {
		out.Result, out.Err = c.Run()
		return out
	}
	if c.Build == nil {
		out.Err = fmt.Errorf("sweep: cell has no Build or Run hook")
		return out
	}
	g, trace, cfg, err := c.Build()
	if err != nil {
		out.Err = err
		return out
	}
	if c.Parallelism > 0 {
		cfg.Parallelism = c.Parallelism
	}
	n, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		out.Err = err
		return out
	}
	out.Result, out.Err = n.Run(trace)
	return out
}

// Run executes the cells on a bounded worker pool. workers <= 0 uses
// GOMAXPROCS; workers == 1 runs sequentially in the calling goroutine. The
// result slice is indexed like cells, independent of scheduling order.
func Run(cells []Cell, workers int) []CellResult {
	results := make([]CellResult, len(cells))
	if len(cells) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers == 1 {
		for i, c := range cells {
			results[i] = RunCell(c)
		}
		return results
	}
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = RunCell(cells[i])
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}

// FirstErr returns the first cell error in cell order, annotated with the
// failing cell's labels, or nil.
func FirstErr(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("sweep: %v seed=%d %s=%g %s: %w",
				r.Cell.Scheme, r.Cell.Seed, r.Cell.Axis, r.Cell.X, r.Cell.Label, r.Err)
		}
	}
	return nil
}
