package transport

import (
	"sync"
	"testing"
	"time"
)

func TestInProcDelivery(t *testing.T) {
	tr := NewInProc()
	var got []byte
	var from Address
	if err := tr.Register("b", func(f Address, p []byte) { from, got = f, p }); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("a", "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if from != "a" || string(got) != "hello" {
		t.Fatalf("got %q from %q", got, from)
	}
}

func TestInProcUnknownAddress(t *testing.T) {
	tr := NewInProc()
	if err := tr.Send("a", "nowhere", []byte("x")); err == nil {
		t.Fatal("send to unknown address succeeded")
	}
}

func TestInProcDuplicateRegister(t *testing.T) {
	tr := NewInProc()
	h := func(Address, []byte) {}
	if err := tr.Register("a", h); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register("a", h); err == nil {
		t.Fatal("duplicate register accepted")
	}
	if err := tr.Register("b", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestInProcPayloadCopied(t *testing.T) {
	tr := NewInProc()
	var got []byte
	if err := tr.Register("b", func(_ Address, p []byte) { got = p }); err != nil {
		t.Fatal(err)
	}
	payload := []byte("mutate-me")
	if err := tr.Send("a", "b", payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X'
	if string(got) != "mutate-me" {
		t.Fatal("receiver shares the sender's buffer")
	}
}

func TestTCPDelivery(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	type msg struct {
		from Address
		p    []byte
	}
	ch := make(chan msg, 1)
	if err := tr.Register("hub", func(f Address, p []byte) { ch <- msg{f, p} }); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("client", "hub", []byte("payreq")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if m.from != "client" || string(m.p) != "payreq" {
			t.Fatalf("got %q from %q", m.p, m.from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for TCP delivery")
	}
}

func TestTCPUnknownAddress(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Send("a", "ghost", []byte("x")); err == nil {
		t.Fatal("send to unknown TCP address succeeded")
	}
}

func TestTCPConcurrentSends(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	var mu sync.Mutex
	count := 0
	done := make(chan struct{})
	const total = 32
	if err := tr.Register("sink", func(Address, []byte) {
		mu.Lock()
		count++
		if count == total {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tr.Send("src", "sink", []byte("m")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		got := count
		mu.Unlock()
		t.Fatalf("only %d/%d messages delivered", got, total)
	}
}

func TestTCPRegisterAfterClose(t *testing.T) {
	tr := NewTCP()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register("a", func(Address, []byte) {}); err == nil {
		t.Fatal("register after close accepted")
	}
}
