// Package transport provides the message-passing substrate for the Splicer
// protocol layer: a reliable in-process bus for simulation and tests, and a
// TCP transport (length-prefixed gob frames over stdlib net) standing in
// for the TLS links of §III-A — the paper's clients and smooth nodes talk
// over TLS; the framing and addressing here are the same shape, with the
// crypto handled one layer up (payment demands are ElGamal-encrypted before
// they ever reach a transport).
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// Address identifies an endpoint.
type Address string

// Handler consumes an inbound message.
type Handler func(from Address, payload []byte)

// Transport delivers opaque payloads between addresses.
type Transport interface {
	// Register binds an address to a handler. An address can be registered
	// once.
	Register(addr Address, h Handler) error
	// Send delivers payload to the addressee's handler.
	Send(from, to Address, payload []byte) error
	// Close releases resources.
	Close() error
}

// InProc is a synchronous in-process bus. Sends invoke the receiving
// handler directly; the caller provides any concurrency.
type InProc struct {
	mu       sync.RWMutex
	handlers map[Address]Handler
}

// NewInProc returns an empty bus.
func NewInProc() *InProc {
	return &InProc{handlers: map[Address]Handler{}}
}

// Register implements Transport.
func (t *InProc) Register(addr Address, h Handler) error {
	if h == nil {
		return fmt.Errorf("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.handlers[addr]; dup {
		return fmt.Errorf("transport: address %q already registered", addr)
	}
	t.handlers[addr] = h
	return nil
}

// Send implements Transport.
func (t *InProc) Send(from, to Address, payload []byte) error {
	t.mu.RLock()
	h, ok := t.handlers[to]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("transport: unknown address %q", to)
	}
	// Copy the payload: receivers may retain it.
	h(from, append([]byte(nil), payload...))
	return nil
}

// Close implements Transport.
func (t *InProc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers = map[Address]Handler{}
	return nil
}

// frame is the gob wire format of the TCP transport.
type frame struct {
	From    Address
	To      Address
	Payload []byte
}

// TCP is a transport running over loopback (or real) TCP. Each Register
// spawns a listener; Send dials, writes one gob frame, and closes. The
// design favors simplicity over connection reuse — protocol tests exchange
// a handful of messages.
type TCP struct {
	mu        sync.Mutex
	listeners map[Address]net.Listener
	addrs     map[Address]string // logical address → host:port
	wg        sync.WaitGroup
	closed    bool
}

// NewTCP returns an empty TCP transport.
func NewTCP() *TCP {
	return &TCP{listeners: map[Address]net.Listener{}, addrs: map[Address]string{}}
}

// Register implements Transport: it binds a loopback listener for addr.
func (t *TCP) Register(addr Address, h Handler) error {
	if h == nil {
		return fmt.Errorf("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: closed")
	}
	if _, dup := t.listeners[addr]; dup {
		return fmt.Errorf("transport: address %q already registered", addr)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("transport: listen: %w", err)
	}
	t.listeners[addr] = ln
	t.addrs[addr] = ln.Addr().String()
	t.wg.Add(1)
	go t.serve(ln, h)
	return nil
}

func (t *TCP) serve(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		func() {
			defer conn.Close()
			var f frame
			if err := gob.NewDecoder(conn).Decode(&f); err != nil {
				return // malformed frame dropped, like a broken TLS record
			}
			h(f.From, f.Payload)
		}()
	}
}

// Send implements Transport.
func (t *TCP) Send(from, to Address, payload []byte) error {
	t.mu.Lock()
	hostport, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: unknown address %q", to)
	}
	conn, err := net.Dial("tcp", hostport)
	if err != nil {
		return fmt.Errorf("transport: dial %q: %w", to, err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(frame{From: from, To: to, Payload: payload}); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	return nil
}

// Close implements Transport: stops all listeners and waits for readers.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	t.listeners = map[Address]net.Listener{}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
