package dynamics

// Serving-mode integration: the dynamics driver is the writer role of the
// snapshot architecture — every structural event it applies lands in a
// Network mutator, which publishes the next epoch through InvalidateRoutes.
// These tests pin that a full dynamics-driven run over a snapshot-enabled
// network produces a monotone, consistent epoch sequence, and that enabling
// snapshots does not perturb the run itself.

import (
	"reflect"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
)

func TestDriverPublishesEpochsUnderChurn(t *testing.T) {
	n := testNetwork(t, 91, 60, pcn.SchemeSplicer)
	st := n.EnableSnapshots()
	if st.Epoch() != 1 {
		t.Fatalf("EnableSnapshots published epoch %d, want 1", st.Epoch())
	}
	cfg := testConfig()
	cfg.ReplaceInterval = 2
	d, err := NewDriver(n, rng.New(92), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}

	applied := 0
	for _, a := range d.Log() {
		if a.Skipped == "" {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("timeline applied no structural events; test is vacuous")
	}
	// Every applied shape event publishes; the final epoch must reflect at
	// least that much churn (capacity-only events may share epochs).
	if st.Epoch() < 2 {
		t.Fatalf("run with %d applied events finished at epoch %d", applied, st.Epoch())
	}
	stats := st.Stats()
	if stats.ActivePins != 0 {
		t.Fatalf("run leaked %d pins", stats.ActivePins)
	}

	// The final epoch serves the final topology, consistently.
	s := st.Acquire()
	defer s.Release()
	if err := graph.ValidateSnapshot(s.Graph()); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Graph().NumLiveEdges(), n.Graph().NumLiveEdges(); got != want {
		t.Fatalf("final epoch has %d live edges, live graph has %d", got, want)
	}
}

// TestSnapshotsDoNotPerturbDrivenRun pins the batch-equivalence contract at
// the dynamics layer: the same seeded run produces an identical Result and
// applied-event log with and without a snapshot store attached.
func TestSnapshotsDoNotPerturbDrivenRun(t *testing.T) {
	run := func(enable bool) (pcn.Result, []Applied) {
		n := testNetwork(t, 93, 60, pcn.SchemeSplicer)
		if enable {
			n.EnableSnapshots()
		}
		d, err := NewDriver(n, rng.New(94), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, d.Log()
	}
	plainRes, plainLog := run(false)
	snapRes, snapLog := run(true)
	if !reflect.DeepEqual(plainRes, snapRes) {
		t.Fatalf("results diverge with snapshots enabled:\nplain %+v\nsnap  %+v", plainRes, snapRes)
	}
	if len(plainLog) != len(snapLog) {
		t.Fatalf("applied logs diverge: %d vs %d events", len(plainLog), len(snapLog))
	}
	for i := range plainLog {
		if plainLog[i] != snapLog[i] {
			t.Fatalf("applied[%d] diverges: %+v vs %+v", i, plainLog[i], snapLog[i])
		}
	}
}
