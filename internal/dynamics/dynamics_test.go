package dynamics

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/topology"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// testNetwork builds a Watts–Strogatz network under the given scheme.
func testNetwork(t testing.TB, seed uint64, nodes int, scheme pcn.Scheme) *pcn.Network {
	t.Helper()
	src := rng.New(seed)
	sizes := workload.NewChannelSizeDist(src.Split(1), 1)
	g, err := topology.WattsStrogatz(src.Split(2), nodes, 4, 0.25, sizes.CapacityFunc())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pcn.NewConfig(scheme)
	cfg.NumHubCandidates = 8
	n, err := pcn.NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// testConfig is a lively 4-second churn configuration.
func testConfig() Config {
	cfg := NewConfig(4)
	cfg.JoinRate = 2
	cfg.LeaveRate = 2
	cfg.OpenRate = 2
	cfg.CloseRate = 2
	cfg.TopUpRate = 2
	cfg.Rate = 60
	return cfg
}

func TestTimelineDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := GenerateTimeline(rng.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTimeline(rng.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different timelines")
	}
	c, err := GenerateTimeline(rng.New(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical timelines")
	}
	if len(a) == 0 {
		t.Fatal("timeline empty at these rates")
	}
	// Sorted by time; every kind appears at these rates over 4 s.
	seen := map[Kind]int{}
	for i, ev := range a {
		if i > 0 && ev.Time < a[i-1].Time {
			t.Fatal("timeline out of order")
		}
		if ev.Time < 0 || ev.Time >= cfg.Horizon {
			t.Fatalf("event time %v outside [0, %v)", ev.Time, cfg.Horizon)
		}
		if len(ev.Picks) != cfg.picksFor(ev.Kind) {
			t.Fatalf("%v event carries %d picks, want %d", ev.Kind, len(ev.Picks), cfg.picksFor(ev.Kind))
		}
		seen[ev.Kind]++
	}
	for _, k := range []Kind{KindJoin, KindLeave, KindOpen, KindClose, KindTopUp} {
		if seen[k] == 0 {
			t.Fatalf("no %v events generated", k)
		}
	}
}

func TestTimelineValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Horizon = 0
	if _, err := GenerateTimeline(rng.New(1), cfg); err == nil {
		t.Fatal("zero horizon accepted")
	}
	cfg = testConfig()
	cfg.DiurnalAmplitude = 1
	if _, err := GenerateTimeline(rng.New(1), cfg); err == nil {
		t.Fatal("amplitude 1 accepted")
	}
}

// runOnce executes one full dynamic run and returns the result plus the
// applied-event log rendered to a canonical string.
func runOnce(t testing.TB, seed uint64, scheme pcn.Scheme, cfg Config) (pcn.Result, string) {
	t.Helper()
	n := testNetwork(t, seed, 60, scheme)
	d, err := NewDriver(n, rng.New(seed+1000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, fmt.Sprintf("%+v", d.Log())
}

// TestDriverDeterministic: identical seeds give byte-identical results and
// applied-event logs — the in-cell half of the worker-invariance story (the
// sweep engine provides the across-worker half).
func TestDriverDeterministic(t *testing.T) {
	cfg := testConfig()
	r1, log1 := runOnce(t, 21, pcn.SchemeSplicer, cfg)
	r2, log2 := runOnce(t, 21, pcn.SchemeSplicer, cfg)
	if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r2) {
		t.Fatalf("results differ:\n%+v\n%+v", r1, r2)
	}
	if log1 != log2 {
		t.Fatal("applied-event logs differ between identical runs")
	}
}

func TestDriverAppliesChurn(t *testing.T) {
	n := testNetwork(t, 31, 60, pcn.SchemeSpider)
	cfg := testConfig()
	d, err := NewDriver(n, rng.New(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no demand generated")
	}
	if res.TSR < 0 || res.TSR > 1 {
		t.Fatalf("TSR = %v out of range", res.TSR)
	}
	applied := map[Kind]int{}
	skipped := 0
	for _, a := range d.Log() {
		if a.Skipped != "" {
			skipped++
			continue
		}
		applied[a.Kind]++
	}
	for _, k := range []Kind{KindJoin, KindLeave, KindOpen, KindClose, KindTopUp} {
		if applied[k] == 0 {
			t.Fatalf("no %v events applied (skipped=%d)", k, skipped)
		}
	}
	// Churn really happened: nodes joined and departed.
	g := n.Graph()
	if g.NumNodes() <= 60 {
		t.Fatalf("NumNodes = %d, want > 60 after joins", g.NumNodes())
	}
	departures := 0
	for v := 0; v < g.NumNodes(); v++ {
		if n.Departed(graph.NodeID(v)) {
			departures++
		}
	}
	if departures == 0 {
		t.Fatal("no departures recorded")
	}
	if g.NumLiveEdges() >= g.NumEdges() {
		t.Fatal("no channels closed")
	}
}

// TestOnlineReplacementRecoversChurn pins the subsystem's headline claim:
// under heavy hub-killing churn, Splicer with periodic online re-placement
// completes more payments than Splicer with the static initial placement.
// Deterministic: fixed seeds.
func TestOnlineReplacementRecoversChurn(t *testing.T) {
	cfg := testConfig()
	cfg.LeaveRate = 4
	cfg.JoinRate = 1
	static, _ := runOnce(t, 41, pcn.SchemeSplicer, cfg)
	cfg.ReplaceInterval = 1
	online, _ := runOnce(t, 41, pcn.SchemeSplicer, cfg)
	t.Logf("static TSR=%.4f online TSR=%.4f", static.TSR, online.TSR)
	if online.TSR <= static.TSR {
		t.Fatalf("online re-placement TSR %.4f not above static %.4f under heavy churn",
			online.TSR, static.TSR)
	}
}

func TestReplaceRequiresSplicer(t *testing.T) {
	n := testNetwork(t, 51, 60, pcn.SchemeSpider)
	cfg := testConfig()
	cfg.ReplaceInterval = 1
	if _, err := NewDriver(n, rng.New(52), cfg); err == nil {
		t.Fatal("re-placement accepted for a non-placement scheme")
	}
}

// BenchmarkDynamicsEvents measures the event-application hot path: the full
// structural timeline applied to a live network (no demand), i.e. the
// marginal cost dynamics adds on top of a static simulation.
func BenchmarkDynamicsEvents(b *testing.B) {
	cfg := testConfig()
	cfg.Rate = 1 // demand off the hot path; Config requires a positive rate
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := testNetwork(b, 61, 100, pcn.SchemeSplicer)
		d, err := NewDriver(n, rng.New(62), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, ev := range d.Timeline() {
			d.apply(ev)
		}
	}
}
