package dynamics

import (
	"testing"

	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
)

// TestConservationUnderChurn asserts the conservation-of-funds invariant
// over full dynamic runs: joins, departures, channel opens/closes, top-ups,
// rebalancing and (for Splicer) online re-placement with its capital pledges
// all go through the recorded-capital paths, so the live total must still
// match the ledger at the end of the run.
func TestConservationUnderChurn(t *testing.T) {
	for _, tc := range []struct {
		name    string
		scheme  pcn.Scheme
		replace float64
	}{
		{"ShortestPath", pcn.SchemeShortestPath, 0},
		{"Splicer", pcn.SchemeSplicer, 0},
		{"Splicer online", pcn.SchemeSplicer, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := testNetwork(t, 31, 50, tc.scheme)
			cfg := testConfig()
			cfg.ReplaceInterval = tc.replace
			d, err := NewDriver(n, rng.New(31).Split(4), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Run(); err != nil {
				t.Fatal(err)
			}
			applied := 0
			for _, a := range d.Log() {
				if a.Skipped == "" {
					applied++
				}
			}
			if applied == 0 {
				t.Fatal("churn run applied no structural events; invariant not exercised")
			}
			if err := d.Network().CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
