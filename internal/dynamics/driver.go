package dynamics

import (
	"fmt"
	"math"
	"sort"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/pcn"
	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Applied is one resolved structural event, recorded for the determinism
// tests and for post-run inspection: the raw timeline carries draws, the
// applied log carries the concrete node/channel the draw resolved to.
type Applied struct {
	Time   float64
	Kind   Kind
	Node   graph.NodeID // joiner, leaver, or open endpoint u
	Peer   graph.NodeID // open endpoint v / join peer (first)
	Edge   graph.EdgeID // closed or topped-up channel
	Amount float64
	// Skipped notes an event that resolved to a no-op (population floor,
	// no live channel to close, ...) and why.
	Skipped string
}

// Driver runs one dynamic-network simulation: it owns the demand process
// and applies the structural timeline to the network from inside the
// network's event loop.
//
// A Driver is single-use and, like the Network, single-goroutine; parallel
// sweep workers each build their own.
type Driver struct {
	net *pcn.Network
	cfg Config

	timeline []Event

	// Demand state.
	arrSrc   *rng.Source // arrival interarrival times
	thinSrc  *rng.Source // diurnal thinning accepts
	endSrc   *rng.Source // endpoint draws
	driftSrc *rng.Source // hotspot drift reshuffles
	values   *workload.TxValueDist
	ranking  []graph.NodeID // active nodes in popularity order (rank 0 hottest)
	zipf     *rng.Zipf
	nextTxID int

	applied     []Applied
	replaceErrs int
	replaceRuns int
}

// NewDriver builds a driver over a freshly constructed network. The source
// seeds every stochastic component; two drivers built from equal-seed
// sources over equal networks produce identical runs.
func NewDriver(net *pcn.Network, src *rng.Source, cfg Config) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReplaceInterval > 0 && net.Policy().Scheme() != pcn.SchemeSplicer {
		return nil, fmt.Errorf("dynamics: online re-placement drives the Splicer placement pipeline; scheme %v does not use it", net.Policy().Scheme())
	}
	timeline, err := GenerateTimeline(src.Split(1), cfg)
	if err != nil {
		return nil, err
	}
	d := &Driver{
		net:      net,
		cfg:      cfg,
		timeline: timeline,
		arrSrc:   src.Split(2),
		thinSrc:  src.Split(3),
		endSrc:   src.Split(4),
		driftSrc: src.Split(5),
		values:   workload.NewTxValueDist(src.Split(6), cfg.ValueScale),
	}
	// Initial popularity ranking: ascending node id, matching the static
	// workload generator's client order.
	for v := 0; v < net.Graph().NumNodes(); v++ {
		if !net.Departed(graph.NodeID(v)) {
			d.ranking = append(d.ranking, graph.NodeID(v))
		}
	}
	if len(d.ranking) < 2 {
		return nil, fmt.Errorf("dynamics: need >= 2 active nodes, got %d", len(d.ranking))
	}
	d.zipf = rng.NewZipf(d.endSrc, len(d.ranking), cfg.ZipfSkew)
	return d, nil
}

// Timeline returns the pre-generated structural timeline (for tests and
// inspection).
func (d *Driver) Timeline() []Event { return d.timeline }

// Network returns the driven network, e.g. for post-run invariant checks.
func (d *Driver) Network() *pcn.Network { return d.net }

// Log returns the applied-event log in application order.
func (d *Driver) Log() []Applied { return d.applied }

// ReplaceStats reports how many online re-placements ran and how many
// failed (failures skip the re-placement and keep the current hub set).
func (d *Driver) ReplaceStats() (runs, errs int) { return d.replaceRuns, d.replaceErrs }

// Run executes the dynamic simulation: structural events and the demand
// process over [0, Horizon), then a drain window for in-flight payments.
func (d *Driver) Run() (pcn.Result, error) {
	horizon := d.cfg.Horizon + d.cfg.Timeout + 1
	if err := d.net.BeginRun(horizon); err != nil {
		return pcn.Result{}, err
	}
	for i := range d.timeline {
		ev := d.timeline[i]
		if err := d.net.At(ev.Time, func() { d.apply(ev) }); err != nil {
			return pcn.Result{}, err
		}
	}
	// Periodic processes tick at i·interval below the demand horizon, on
	// the engine's drift-free Every loop at external-event priority.
	for _, p := range []struct {
		interval float64
		action   func()
	}{
		{d.cfg.RebalanceInterval, d.rebalance},
		{d.cfg.HotspotDriftInterval, d.driftHotspots},
		{d.cfg.ReplaceInterval, d.replace},
	} {
		if p.interval <= 0 {
			continue
		}
		if err := d.net.Every(p.interval, d.cfg.Horizon, p.action); err != nil {
			return pcn.Result{}, err
		}
	}
	if err := d.scheduleNextArrival(0); err != nil {
		return pcn.Result{}, err
	}
	return d.net.Execute(horizon)
}

// scheduleNextArrival extends the nonhomogeneous Poisson demand process by
// thinning: candidate arrivals come at the peak rate, and each is accepted
// with probability λ(t)/λpeak.
func (d *Driver) scheduleNextArrival(now float64) error {
	peak := d.cfg.Rate * (1 + d.cfg.DiurnalAmplitude)
	t := now + d.arrSrc.Exponential(peak)
	if t >= d.cfg.Horizon {
		return nil
	}
	return d.net.At(t, func() {
		if d.thinSrc.Float64() < d.lambda(t)/peak {
			d.arrive(t)
		}
		if err := d.scheduleNextArrival(t); err != nil {
			panic(err) // next arrival is in the future by construction
		}
	})
}

// lambda is the instantaneous demand rate at time t.
func (d *Driver) lambda(t float64) float64 {
	return d.cfg.Rate * (1 + d.cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t/d.cfg.diurnalPeriod()))
}

// arrive resolves one payment against the live node set and delivers it.
func (d *Driver) arrive(t float64) {
	if len(d.ranking) < 2 {
		return
	}
	si := d.zipf.Next()
	ri := d.zipf.Next()
	for ri == si {
		ri = d.endSrc.IntN(len(d.ranking))
	}
	tx := workload.Tx{
		ID:        d.nextTxID,
		Sender:    d.ranking[si],
		Recipient: d.ranking[ri],
		Value:     d.values.Sample(),
		Arrival:   t,
		Deadline:  t + d.cfg.Timeout,
	}
	d.nextTxID++
	d.net.Arrive(tx)
}

// apply resolves and executes one structural event.
func (d *Driver) apply(ev Event) {
	rec := Applied{Time: ev.Time, Kind: ev.Kind, Amount: ev.Amount, Node: -1, Peer: -1, Edge: -1}
	switch ev.Kind {
	case KindJoin:
		d.applyJoin(ev, &rec)
	case KindLeave:
		d.applyLeave(ev, &rec)
	case KindOpen:
		d.applyOpen(ev, &rec)
	case KindClose:
		d.applyClose(ev, &rec)
	case KindTopUp:
		d.applyTopUp(ev, &rec)
	}
	d.applied = append(d.applied, rec)
}

func (d *Driver) applyJoin(ev Event, rec *Applied) {
	peers := make([]graph.NodeID, 0, len(ev.Picks))
	for _, p := range ev.Picks {
		peers = append(peers, d.ranking[pickIndex(p, len(d.ranking))])
	}
	v := d.net.JoinNode()
	rec.Node = v
	for i, peer := range peers {
		if peer == v {
			continue // cannot happen (v is new), but keep the guard local
		}
		if _, err := d.net.OpenChannel(v, peer, ev.Amount, ev.Amount); err != nil {
			rec.Skipped = err.Error()
			continue
		}
		if i == 0 {
			rec.Peer = peer
		}
	}
	// New nodes join at the cold end of the popularity ranking.
	d.ranking = append(d.ranking, v)
	d.rebuildZipf()
}

func (d *Driver) applyLeave(ev Event, rec *Applied) {
	if len(d.ranking) <= d.cfg.MinPopulation {
		rec.Skipped = "population floor"
		return
	}
	idx := pickIndex(ev.Picks[0], len(d.ranking))
	v := d.ranking[idx]
	if err := d.net.DepartNode(v); err != nil {
		rec.Skipped = err.Error()
		return
	}
	rec.Node = v
	d.ranking = append(d.ranking[:idx], d.ranking[idx+1:]...)
	d.rebuildZipf()
}

func (d *Driver) applyOpen(ev Event, rec *Applied) {
	n := len(d.ranking)
	if n < 2 {
		rec.Skipped = "too few nodes"
		return
	}
	u := d.ranking[pickIndex(ev.Picks[0], n)]
	v := d.ranking[pickIndex(ev.Picks[1], n)]
	if u == v {
		v = d.ranking[(pickIndex(ev.Picks[1], n)+1)%n]
	}
	if _, err := d.net.OpenChannel(u, v, ev.Amount, ev.Amount); err != nil {
		rec.Skipped = err.Error()
		return
	}
	rec.Node, rec.Peer = u, v
}

func (d *Driver) applyClose(ev Event, rec *Applied) {
	live := d.liveChannels()
	if len(live) == 0 {
		rec.Skipped = "no live channels"
		return
	}
	eid := live[pickIndex(ev.Picks[0], len(live))]
	if err := d.net.CloseChannel(eid); err != nil {
		rec.Skipped = err.Error()
		return
	}
	rec.Edge = eid
}

func (d *Driver) applyTopUp(ev Event, rec *Applied) {
	live := d.liveChannels()
	if len(live) == 0 {
		rec.Skipped = "no live channels"
		return
	}
	eid := live[pickIndex(ev.Picks[0], len(live))]
	if err := d.net.TopUpChannel(eid, ev.Amount/2, ev.Amount/2); err != nil {
		rec.Skipped = err.Error()
		return
	}
	rec.Edge = eid
}

// rebalance repairs depletion: the RebalanceTopK most imbalanced open
// channels move RebalanceFraction of their gap back toward even.
func (d *Driver) rebalance() {
	live := d.liveChannels()
	type cand struct {
		eid graph.EdgeID
		imb float64
	}
	cands := make([]cand, 0, len(live))
	for _, eid := range live {
		if imb := d.net.Channel(eid).Imbalance(); imb > 0 {
			cands = append(cands, cand{eid, imb})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].imb != cands[j].imb {
			return cands[i].imb > cands[j].imb
		}
		return cands[i].eid < cands[j].eid
	})
	k := d.cfg.RebalanceTopK
	if k > len(cands) {
		k = len(cands)
	}
	for _, c := range cands[:k] {
		d.net.RebalanceChannel(c.eid, d.cfg.RebalanceFraction)
	}
}

// rebuildZipf re-sizes the Zipf sampler after a membership change.
func (d *Driver) rebuildZipf() {
	d.zipf = rng.NewZipf(d.endSrc, len(d.ranking), d.cfg.ZipfSkew)
}

// RemoveFromDemand takes a node out of the demand ranking. External layers
// that depart nodes outside the driver's own timeline — the attack
// injector's correlated hub outage — call it so the demand process stops
// targeting a node the topology no longer holds. No-op when absent.
func (d *Driver) RemoveFromDemand(v graph.NodeID) {
	for i, u := range d.ranking {
		if u == v {
			d.ranking = append(d.ranking[:i], d.ranking[i+1:]...)
			d.rebuildZipf()
			return
		}
	}
}

// AddToDemand re-admits a node at the cold end of the popularity ranking
// (the same slot joiners get); the inverse of RemoveFromDemand, used when an
// outaged node recovers. No-op when already present.
func (d *Driver) AddToDemand(v graph.NodeID) {
	for _, u := range d.ranking {
		if u == v {
			return
		}
	}
	d.ranking = append(d.ranking, v)
	d.rebuildZipf()
}

// driftHotspots reshuffles the popularity ranking: which nodes carry the
// Zipf head changes over time, so demand concentration wanders across the
// network.
func (d *Driver) driftHotspots() {
	d.driftSrc.Shuffle(len(d.ranking), func(i, j int) {
		d.ranking[i], d.ranking[j] = d.ranking[j], d.ranking[i]
	})
}

// replace re-runs hub placement online. Failures (e.g. a placement solve on
// a degenerate topology) keep the current hub set rather than killing the
// run; they are counted for inspection.
func (d *Driver) replace() {
	d.replaceRuns++
	if err := d.net.RePlaceHubs(); err != nil {
		d.replaceErrs++
	}
}

// liveChannels lists the open channels in ascending EdgeID order.
func (d *Driver) liveChannels() []graph.EdgeID {
	g := d.net.Graph()
	out := make([]graph.EdgeID, 0, g.NumLiveEdges())
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeRemoved(graph.EdgeID(i)) {
			out = append(out, graph.EdgeID(i))
		}
	}
	return out
}

// pickIndex maps a uniform draw in [0,1) to an index in [0,n).
func pickIndex(p float64, n int) int {
	i := int(p * float64(n))
	if i >= n { // p ~ 1-ε with float rounding
		i = n - 1
	}
	return i
}
