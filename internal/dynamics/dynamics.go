// Package dynamics is the dynamic-network layer of the simulator: it drives
// a live pcn.Network through a timeline of node arrivals and departures,
// channel opens/closes/top-ups, channel depletion repair (periodic
// rebalancing), and time-varying demand (diurnal arrival-rate modulation
// plus Zipf-hotspot drift of the endpoint distribution), with optional
// online hub re-placement.
//
// The paper evaluates Splicer and its baselines on static snapshots; the
// phenomena its motivation leans on (§II-B deadlocks, hub capitalization)
// are dynamic. This package opens that axis: how each scheme's TSR/delay
// degrades under churn, and whether periodically re-running placement
// (Network.RePlaceHubs) recovers it.
//
// Determinism: the structural event timeline is a pure function of the seed
// (GenerateTimeline), carrying uniform draws that the driver resolves
// against the live topology at apply time. The driver itself runs inside
// the network's single-threaded event loop, so a whole dynamic run is a
// deterministic function of (graph, config, seed) — byte-identical across
// sweep worker counts.
package dynamics

import (
	"fmt"
	"sort"

	"github.com/splicer-pcn/splicer/internal/rng"
	"github.com/splicer-pcn/splicer/internal/workload"
)

// Kind identifies a structural event type.
type Kind int

// Structural event kinds.
const (
	KindJoin  Kind = iota + 1 // a node arrives and opens channels
	KindLeave                 // a node departs; its channels close
	KindOpen                  // two existing nodes open a channel
	KindClose                 // an existing channel closes
	KindTopUp                 // an existing channel is topped up
)

func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindOpen:
		return "open"
	case KindClose:
		return "close"
	case KindTopUp:
		return "topup"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one pre-generated structural event. Node and channel choices are
// carried as uniform draws in [0,1) (Picks) and resolved against the live
// topology when the event fires, so the timeline itself never goes stale:
// "close the p-th live channel" is meaningful whatever happened before it.
type Event struct {
	Time   float64
	Kind   Kind
	Picks  []float64 // selection draws; length depends on Kind
	Amount float64   // channel funding (join/open) or top-up size
}

// Config parameterizes a dynamic run. The zero value is inert; NewConfig
// supplies usable defaults.
type Config struct {
	// Horizon is the length of the dynamic evolution in seconds: demand and
	// structural events stop there, and the run drains for Timeout after.
	Horizon float64

	// Structural churn rates, events/sec. Zero disables a process.
	JoinRate  float64
	LeaveRate float64
	OpenRate  float64
	CloseRate float64
	TopUpRate float64
	// JoinChannels is how many channels a joining node opens.
	JoinChannels int
	// ChannelScale multiplies the LN-calibrated funding of dynamically
	// opened channels (matching the topology generator's scale).
	ChannelScale float64

	// MinPopulation guards the network against churning itself away: leave
	// events are skipped while the active population is at or below it.
	MinPopulation int

	// Depletion repair: every RebalanceInterval, the RebalanceTopK most
	// imbalanced open channels move RebalanceFraction of their balance gap
	// back toward even (off-chain circular rebalancing). Interval 0
	// disables.
	RebalanceInterval float64
	RebalanceFraction float64
	RebalanceTopK     int

	// Demand.
	Rate       float64 // base aggregate arrival rate (tx/sec)
	ValueScale float64
	ZipfSkew   float64
	Timeout    float64
	// DiurnalAmplitude modulates the arrival rate:
	// λ(t) = Rate·(1 + A·sin(2πt/DiurnalPeriod)), A in [0,1).
	// DiurnalPeriod 0 means one full cycle over the horizon.
	DiurnalAmplitude float64
	DiurnalPeriod    float64
	// HotspotDriftInterval re-draws which nodes are the Zipf hotspots every
	// interval (0 disables): the popularity ranking is reshuffled, shifting
	// the demand concentration across the network over time.
	HotspotDriftInterval float64

	// ReplaceInterval re-runs hub placement online every interval (0 keeps
	// the initial placement static). Meaningful for hub-based schemes.
	ReplaceInterval float64
}

// NewConfig returns a moderate-churn dynamic configuration over the given
// horizon: the structural processes are on at modest rates, demand is
// diurnal with hotspot drift, and re-placement is off (static baseline).
func NewConfig(horizon float64) Config {
	return Config{
		Horizon:              horizon,
		JoinRate:             0.5,
		LeaveRate:            0.5,
		OpenRate:             0.5,
		CloseRate:            0.5,
		TopUpRate:            1,
		JoinChannels:         2,
		ChannelScale:         1,
		MinPopulation:        8,
		RebalanceInterval:    1,
		RebalanceFraction:    0.5,
		RebalanceTopK:        8,
		Rate:                 100,
		ValueScale:           1,
		ZipfSkew:             0.8,
		Timeout:              3,
		DiurnalAmplitude:     0.5,
		DiurnalPeriod:        0,
		HotspotDriftInterval: 2,
		ReplaceInterval:      0,
	}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("dynamics: Horizon must be positive, got %v", c.Horizon)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"JoinRate", c.JoinRate}, {"LeaveRate", c.LeaveRate},
		{"OpenRate", c.OpenRate}, {"CloseRate", c.CloseRate},
		{"TopUpRate", c.TopUpRate},
	} {
		if r.v < 0 {
			return fmt.Errorf("dynamics: %s must be >= 0, got %v", r.name, r.v)
		}
	}
	if c.JoinRate > 0 && c.JoinChannels < 1 {
		return fmt.Errorf("dynamics: JoinChannels must be >= 1, got %d", c.JoinChannels)
	}
	if c.ChannelScale <= 0 {
		return fmt.Errorf("dynamics: ChannelScale must be positive, got %v", c.ChannelScale)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("dynamics: Rate must be positive, got %v", c.Rate)
	}
	if c.ValueScale <= 0 {
		return fmt.Errorf("dynamics: ValueScale must be positive, got %v", c.ValueScale)
	}
	if c.Timeout <= 0 {
		return fmt.Errorf("dynamics: Timeout must be positive, got %v", c.Timeout)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("dynamics: DiurnalAmplitude must be in [0,1), got %v", c.DiurnalAmplitude)
	}
	if c.RebalanceInterval > 0 && (c.RebalanceFraction <= 0 || c.RebalanceFraction > 1) {
		return fmt.Errorf("dynamics: RebalanceFraction must be in (0,1], got %v", c.RebalanceFraction)
	}
	return nil
}

// diurnalPeriod resolves the default (one cycle per horizon).
func (c Config) diurnalPeriod() float64 {
	if c.DiurnalPeriod > 0 {
		return c.DiurnalPeriod
	}
	return c.Horizon
}

// picksFor returns how many selection draws an event kind carries.
func (c Config) picksFor(k Kind) int {
	switch k {
	case KindJoin:
		return c.JoinChannels // one peer draw per channel the joiner opens
	case KindLeave, KindClose, KindTopUp:
		return 1
	case KindOpen:
		return 2
	default:
		return 0
	}
}

// GenerateTimeline produces the structural event timeline for a run: one
// Poisson process per enabled kind, superposed and sorted by time (ties
// break by kind, then by per-kind sequence). The result is a pure function
// of the source's seed and the config — the dynamics determinism tests pin
// this down byte-for-byte.
func GenerateTimeline(src *rng.Source, cfg Config) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := workload.NewChannelSizeDist(src.Split(7), cfg.ChannelScale)
	var events []Event
	processes := []struct {
		kind Kind
		rate float64
	}{
		{KindJoin, cfg.JoinRate},
		{KindLeave, cfg.LeaveRate},
		{KindOpen, cfg.OpenRate},
		{KindClose, cfg.CloseRate},
		{KindTopUp, cfg.TopUpRate},
	}
	for _, p := range processes {
		if p.rate <= 0 {
			continue
		}
		s := src.Split(uint64(p.kind))
		for t := s.Exponential(p.rate); t < cfg.Horizon; t += s.Exponential(p.rate) {
			ev := Event{Time: t, Kind: p.kind}
			for i := 0; i < cfg.picksFor(p.kind); i++ {
				ev.Picks = append(ev.Picks, s.Float64())
			}
			switch p.kind {
			case KindJoin, KindOpen:
				ev.Amount = sizes.Sample()
			case KindTopUp:
				// Top-ups are smaller than fresh funding: half a typical
				// channel, split across both sides at apply time.
				ev.Amount = sizes.Sample() / 2
			}
			events = append(events, ev)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Kind < events[j].Kind
	})
	return events, nil
}
