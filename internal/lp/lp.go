// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It is the substrate under internal/milp, which the paper's
// small-scale optimal PCH placement (a MILP, §IV-C) is solved with — the
// authors use a commercial solver; this is the from-scratch replacement.
//
// Problems are stated over variables x >= 0 with constraints
// a·x {<=,=,>=} b and a linear objective. The solver uses Bland's rule, so
// it cannot cycle; instances in this codebase are small (hundreds of rows),
// where the dense tableau is simple and fast enough.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // a·x <= b
	GE               // a·x >= b
	EQ               // a·x == b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Constraint is a single linear constraint with sparse coefficients.
type Constraint struct {
	Coeffs map[int]float64
	Op     Op
	RHS    float64
}

// Problem is a linear program over n variables x_0..x_{n-1}, all
// constrained to x >= 0.
type Problem struct {
	n           int
	objective   []float64
	maximize    bool
	constraints []Constraint
}

// NewProblem creates a minimization problem with n non-negative variables
// and a zero objective.
func NewProblem(n int) *Problem {
	return &Problem{n: n, objective: make([]float64, n)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjectiveCoeff sets the objective coefficient of variable i.
func (p *Problem) SetObjectiveCoeff(i int, c float64) {
	p.objective[i] = c
}

// SetMaximize switches the problem to maximization (default: minimize).
func (p *Problem) SetMaximize(maximize bool) { p.maximize = maximize }

// AddConstraint appends a constraint. Coefficients are copied.
func (p *Problem) AddConstraint(coeffs map[int]float64, op Op, rhs float64) error {
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("lp: invalid op %v", op)
	}
	cp := make(map[int]float64, len(coeffs))
	for i, c := range coeffs {
		if i < 0 || i >= p.n {
			return fmt.Errorf("lp: variable %d out of range [0,%d)", i, p.n)
		}
		if c != 0 {
			cp[i] = c
		}
	}
	p.constraints = append(p.constraints, Constraint{Coeffs: cp, Op: op, RHS: rhs})
	return nil
}

// Clone deep-copies the problem, so branch-and-bound can add bound
// constraints per node without interference.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		n:           p.n,
		objective:   append([]float64(nil), p.objective...),
		maximize:    p.maximize,
		constraints: make([]Constraint, len(p.constraints)),
	}
	for i, con := range p.constraints {
		cc := make(map[int]float64, len(con.Coeffs))
		for k, v := range con.Coeffs {
			cc[k] = v
		}
		c.constraints[i] = Constraint{Coeffs: cc, Op: con.Op, RHS: con.RHS}
	}
	return c
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution holds the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solve runs the two-phase simplex and returns the solution. The returned
// error is non-nil only for malformed problems; infeasibility and
// unboundedness are reported through Solution.Status.
func (p *Problem) Solve() (Solution, error) {
	if p.n == 0 {
		return Solution{Status: Optimal, X: nil, Objective: 0}, nil
	}
	obj := append([]float64(nil), p.objective...)
	if p.maximize {
		for i := range obj {
			obj[i] = -obj[i]
		}
	}

	m := len(p.constraints)
	// Column layout: [structural (n)] [slack/surplus (m, some unused)] [artificial (m, some unused)].
	// We build exactly one slack or surplus per inequality and one
	// artificial where needed.
	var (
		nCols    = p.n
		slackCol = make([]int, m) // -1 when none
		artCol   = make([]int, m) // -1 when none
	)
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	ops := make([]Op, m)
	for i, con := range p.constraints {
		slackCol[i], artCol[i] = -1, -1
		row := make([]float64, p.n)
		for j, c := range con.Coeffs {
			row[j] = c
		}
		b := con.RHS
		op := con.Op
		if b < 0 { // normalize RHS >= 0
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i] = row
		rhs[i] = b
		switch op {
		case LE:
			slackCol[i] = nCols
			nCols++
		case GE:
			slackCol[i] = nCols // surplus (coefficient -1)
			nCols++
			artCol[i] = nCols
			nCols++
		case EQ:
			artCol[i] = nCols
			nCols++
		}
		ops[i] = op
	}

	// Dense tableau: m rows, nCols columns, plus RHS column.
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, nCols+1)
		copy(t[i], rows[i])
		t[i][nCols] = rhs[i]
		switch {
		case ops[i] == LE:
			t[i][slackCol[i]] = 1
			basis[i] = slackCol[i]
		case ops[i] == GE:
			t[i][slackCol[i]] = -1
			t[i][artCol[i]] = 1
			basis[i] = artCol[i]
		default: // EQ
			t[i][artCol[i]] = 1
			basis[i] = artCol[i]
		}
	}

	isArtificial := func(col int) bool {
		for i := 0; i < m; i++ {
			if artCol[i] == col {
				return true
			}
		}
		return false
	}

	// Phase 1: minimize the sum of artificials.
	needPhase1 := false
	for i := 0; i < m; i++ {
		if artCol[i] >= 0 {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		cost := make([]float64, nCols)
		for i := 0; i < m; i++ {
			if artCol[i] >= 0 {
				cost[artCol[i]] = 1
			}
		}
		status := simplex(t, basis, cost, nCols)
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; cannot happen for a
			// well-formed tableau.
			return Solution{}, fmt.Errorf("lp: phase 1 reported unbounded")
		}
		sum := 0.0
		for i := 0; i < m; i++ {
			if isArtificial(basis[i]) {
				sum += t[i][nCols]
			}
		}
		if sum > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Pivot remaining artificials out of the basis where possible;
		// rows that cannot pivot out are redundant (all-zero) rows.
		for i := 0; i < m; i++ {
			if !isArtificial(basis[i]) {
				continue
			}
			for j := 0; j < nCols; j++ {
				if isArtificial(j) {
					continue
				}
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j, nCols)
					break
				}
			}
			// If no pivot column exists the row is redundant; leaving the
			// zero-valued artificial basic is harmless.
		}
	}

	// Phase 2: original objective. Block artificial columns by giving them
	// a prohibitive cost and zeroing them (they are at value 0 and must
	// stay out).
	cost := make([]float64, nCols)
	copy(cost, obj)
	for j := p.n; j < nCols; j++ {
		if isArtificial(j) {
			// Exclude from entering: simplex() skips columns with cost
			// marked NaN.
			cost[j] = math.NaN()
		}
	}
	status := simplex(t, basis, cost, nCols)
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, p.n)
	for i := 0; i < m; i++ {
		if basis[i] < p.n {
			x[basis[i]] = t[i][nCols]
		}
	}
	objVal := 0.0
	for i := range x {
		objVal += p.objective[i] * x[i]
	}
	return Solution{Status: Optimal, X: x, Objective: objVal}, nil
}

// simplex runs primal simplex iterations on tableau t with the given basis
// and cost vector until optimality or unboundedness. Columns whose cost is
// NaN are barred from entering the basis. It uses Bland's rule.
func simplex(t [][]float64, basis []int, cost []float64, nCols int) Status {
	m := len(t)
	// Reduced costs are computed directly each iteration:
	// r_j = c_j - sum_i c_{basis[i]} * t[i][j]. With Bland's rule this is
	// O(m·n) per iteration, acceptable at this scale.
	cb := func(i int) float64 {
		c := cost[basis[i]]
		if math.IsNaN(c) {
			return 0 // artificial stuck in a redundant row contributes 0
		}
		return c
	}
	for iter := 0; ; iter++ {
		if iter > 200000 {
			// Bland's rule guarantees termination; this is a final backstop
			// against numerical stalls.
			return Optimal
		}
		enter := -1
		for j := 0; j < nCols; j++ {
			if math.IsNaN(cost[j]) {
				continue
			}
			r := cost[j]
			for i := 0; i < m; i++ {
				r -= cb(i) * t[i][j]
			}
			if r < -1e-8 {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test, Bland: smallest basis index among ties.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][nCols] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		pivot(t, basis, leave, enter, nCols)
	}
}

// pivot performs a Gauss-Jordan pivot making column `col` basic in row `row`.
func pivot(t [][]float64, basis []int, row, col, nCols int) {
	pr := t[row]
	pv := pr[col]
	for j := 0; j <= nCols; j++ {
		pr[j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= nCols; j++ {
			t[i][j] -= f * pr[j]
		}
	}
	basis[row] = col
}
