package lp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/rng"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, obj 12.
	p := NewProblem(2)
	p.SetMaximize(true)
	p.SetObjectiveCoeff(0, 3)
	p.SetObjectiveCoeff(1, 2)
	if err := p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 1, 1: 3}, LE, 6); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("objective %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > 1e-6 || math.Abs(sol.X[1]) > 1e-6 {
		t.Fatalf("x = %v, want [4 0]", sol.X)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 6 → x=6, y=4, obj 24.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 2)
	p.SetObjectiveCoeff(1, 3)
	if err := p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 1}, LE, 6); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-24) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 24", sol.Status, sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + 2y == 4, x >= 0, y >= 0 → y=2, x=0, obj 2.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	if err := p.AddConstraint(map[int]float64{0: 1, 1: 2}, EQ, 4); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 2", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[0]+2*sol.X[1]-4) > 1e-6 {
		t.Fatalf("equality violated: %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	if err := p.AddConstraint(map[int]float64{0: 1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetMaximize(true)
	p.SetObjectiveCoeff(0, 1)
	if err := p.AddConstraint(map[int]float64{0: 1}, GE, 0); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3  ⇔  x >= 3; min x → 3.
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	if err := p.AddConstraint(map[int]float64{0: -1}, LE, -3); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classic degenerate instance (Beale-like); Bland's rule must
	// terminate with the optimum.
	p := NewProblem(4)
	p.SetMaximize(true)
	for i, c := range []float64{0.75, -150, 0.02, -6} {
		p.SetObjectiveCoeff(i, c)
	}
	if err := p.AddConstraint(map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, LE, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, LE, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{2: 1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-0.05) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 0.05", sol.Status, sol.Objective)
	}
}

func TestZeroVariableProblem(t *testing.T) {
	p := NewProblem(0)
	sol := solveOK(t, p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("zero-var problem: %+v", sol)
	}
}

func TestNoConstraintsMinimizeIsZero(t *testing.T) {
	// min x with x >= 0 and no constraints → x=0.
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective) > 1e-9 {
		t.Fatalf("got %v obj=%v", sol.Status, sol.Objective)
	}
}

func TestAddConstraintValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.AddConstraint(map[int]float64{5: 1}, LE, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := p.AddConstraint(map[int]float64{0: 1}, Op(0), 1); err == nil {
		t.Fatal("expected invalid-op error")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	p.SetMaximize(true)
	if err := p.AddConstraint(map[int]float64{0: 1}, LE, 5); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.AddConstraint(map[int]float64{0: 1}, LE, 2); err != nil {
		t.Fatal(err)
	}
	ps := solveOK(t, p)
	cs := solveOK(t, c)
	if math.Abs(ps.Objective-5) > 1e-6 || math.Abs(cs.Objective-2) > 1e-6 {
		t.Fatalf("clone not independent: %v vs %v", ps.Objective, cs.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 sources (supply 20, 30), 3 sinks (demand 10, 25, 15).
	// Costs: [[8,6,10],[9,12,13]]. Known optimum: 400.
	// x[i][j] = var 3i+j.
	p := NewProblem(6)
	costs := []float64{8, 6, 10, 9, 12, 13}
	for i, c := range costs {
		p.SetObjectiveCoeff(i, c)
	}
	if err := p.AddConstraint(map[int]float64{0: 1, 1: 1, 2: 1}, EQ, 20); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint(map[int]float64{3: 1, 4: 1, 5: 1}, EQ, 30); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		demand := []float64{10, 25, 15}[j]
		if err := p.AddConstraint(map[int]float64{j: 1, 3 + j: 1}, EQ, demand); err != nil {
			t.Fatal(err)
		}
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	want := 10.0*9 + 20*6 + 5*12 + 15*13 // 9*10+120+60+195 = 465? compute below
	_ = want
	// Verify optimality by checking the objective against a brute-force
	// grid search over basic feasible assignments.
	best := bruteForceTransport()
	if math.Abs(sol.Objective-best) > 1e-6 {
		t.Fatalf("objective %v, brute force %v", sol.Objective, best)
	}
}

// bruteForceTransport exhaustively minimizes the small transportation
// instance above over an integer grid (optimum of a transportation LP with
// integer supplies/demands is integral).
func bruteForceTransport() float64 {
	costs := [2][3]float64{{8, 6, 10}, {9, 12, 13}}
	demand := [3]float64{10, 25, 15}
	best := math.Inf(1)
	// x[0][j] free in [0, demand_j], x[1][j] = demand_j - x[0][j];
	// supply row 0 must sum to 20.
	for a := 0.0; a <= 10; a++ {
		for b := 0.0; b <= 25; b++ {
			for c := 0.0; c <= 15; c++ {
				if a+b+c != 20 {
					continue
				}
				cost := a*costs[0][0] + b*costs[0][1] + c*costs[0][2] +
					(demand[0]-a)*costs[1][0] + (demand[1]-b)*costs[1][1] + (demand[2]-c)*costs[1][2]
				if cost < best {
					best = cost
				}
			}
		}
	}
	return best
}

func TestPropertyFeasibilityOfOptimum(t *testing.T) {
	// Random small LPs: when the solver says optimal, the solution must
	// satisfy every constraint and non-negativity.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.IntN(4) + 2
		m := src.IntN(5) + 1
		p := NewProblem(n)
		for i := 0; i < n; i++ {
			p.SetObjectiveCoeff(i, src.Float64()*10-5)
		}
		// Keep feasible region bounded: sum x_i <= 10.
		all := map[int]float64{}
		for i := 0; i < n; i++ {
			all[i] = 1
		}
		if err := p.AddConstraint(all, LE, 10); err != nil {
			return false
		}
		cons := make([]Constraint, 0, m)
		for k := 0; k < m; k++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if src.Bool(0.7) {
					coeffs[i] = src.Float64()*4 - 2
				}
			}
			op := []Op{LE, GE, EQ}[src.IntN(3)]
			rhs := src.Float64() * 5
			if op == GE || op == EQ {
				rhs = src.Float64() * 2 // keep feasibility likely
			}
			if err := p.AddConstraint(coeffs, op, rhs); err != nil {
				return false
			}
			cons = append(cons, Constraint{Coeffs: coeffs, Op: op, RHS: rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		if sol.Status != Optimal {
			return true // infeasible/unbounded are acceptable outcomes
		}
		for _, x := range sol.X {
			if x < -1e-6 {
				return false
			}
		}
		sum := 0.0
		for _, x := range sol.X {
			sum += x
		}
		if sum > 10+1e-6 {
			return false
		}
		for _, c := range cons {
			lhs := 0.0
			for i, co := range c.Coeffs {
				lhs += co * sol.X[i]
			}
			switch c.Op {
			case LE:
				if lhs > c.RHS+1e-6 {
					return false
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Op strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
}
