// Package protocol implements Splicer's payment workflow (§III-A, Fig. 3)
// over a transport: payment preparation (payreq → fresh tid and KMG key
// pair), payment execution (the sender encrypts its demand D = (Ps, Pr,
// val); the ingress smooth node threshold-decrypts it, splits it into
// transaction-units, re-encrypts each TU to a fresh key for the egress
// smooth node) and acknowledgment propagation back to the sender.
//
// The hubs' KMG is a real Feldman-VSS DKG committee (internal/dkg), so no
// single smooth node ever holds a demand decryption key.
package protocol

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/big"
	"sync"

	"github.com/splicer-pcn/splicer/internal/dkg"
	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/group"
	"github.com/splicer-pcn/splicer/internal/routing"
	"github.com/splicer-pcn/splicer/internal/transport"
)

// Demand is the payment demand D_tid = (Ps, Pr, val).
type Demand struct {
	Sender    graph.NodeID
	Recipient graph.NodeID
	Value     float64
}

// MsgKind enumerates protocol messages.
type MsgKind int

// Message kinds, in workflow order.
const (
	MsgPayReq   MsgKind = iota + 1 // client → ingress hub: new payment intent
	MsgPayInit                     // ingress hub → client: (tid, pk_tid)
	MsgExec                        // client → ingress hub: (tid, Enc(pk, D)), funds
	MsgTU                          // ingress hub → egress hub: Enc(pk_tuid, D_tuid)
	MsgTUAck                       // egress hub → ingress hub: ACK_tuid
	MsgFinalAck                    // egress hub → recipient → ... → sender
)

// Message is the wire envelope.
type Message struct {
	Kind MsgKind
	TID  uint64
	TUID uint64
	// C1/Data carry an ElGamal ciphertext when present.
	C1   *big.Int
	Data []byte
	// PK carries a fresh public key (MsgPayInit).
	PK *big.Int
	// OK marks acknowledgment status.
	OK bool
	// Total is the number of TUs in the parent payment (MsgTU), so the
	// egress knows when it holds the complete demand and can pay the
	// recipient in one shot (§III-A step 4).
	Total int
}

// Encode serializes a message for a transport payload.
func (m Message) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("protocol: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeMessage parses a transport payload.
func DecodeMessage(payload []byte) (Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("protocol: decode: %w", err)
	}
	return m, nil
}

// encodeDemand/decodeDemand are the plaintext format inside ciphertexts.
func encodeDemand(d Demand) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("protocol: demand encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeDemand(b []byte) (Demand, error) {
	var d Demand
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&d); err != nil {
		return Demand{}, fmt.Errorf("protocol: demand decode: %w", err)
	}
	return d, nil
}

// KMG is the key management group: ι smooth nodes that jointly generate
// fresh key pairs and threshold-decrypt. One KMG is shared by all smooth
// nodes in a deployment.
type KMG struct {
	grp       *group.Group
	size      int
	threshold int

	mu   sync.Mutex
	keys map[uint64]*dkg.Key // tid/tuid → key
	next uint64
}

// NewKMG creates a committee of the given size and threshold.
func NewKMG(size, threshold int) (*KMG, error) {
	if size < 1 || threshold < 1 || threshold > size {
		return nil, fmt.Errorf("protocol: invalid KMG size %d / threshold %d", size, threshold)
	}
	return &KMG{grp: group.Default(), size: size, threshold: threshold, keys: map[uint64]*dkg.Key{}}, nil
}

// FreshKey runs a DKG and returns (id, pk). The secret stays shared inside
// the committee.
func (k *KMG) FreshKey() (uint64, *big.Int, error) {
	key, err := dkg.Generate(k.grp, nil, k.size, k.threshold)
	if err != nil {
		return 0, nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	id := k.next
	k.next++
	k.keys[id] = key
	return id, key.PK, nil
}

// Decrypt threshold-decrypts a ciphertext under key id using the first
// `threshold` committee members' partials.
func (k *KMG) Decrypt(id uint64, ct group.Ciphertext) ([]byte, error) {
	k.mu.Lock()
	key, ok := k.keys[id]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("protocol: unknown key id %d", id)
	}
	parts := make([]dkg.Partial, key.Threshold)
	for i := 0; i < key.Threshold; i++ {
		parts[i] = dkg.Partial{Index: key.Nodes[i].Index, Value: key.PartialDecrypt(key.Nodes[i], ct)}
	}
	return key.CombineDecrypt(parts, ct)
}

// Group exposes the underlying group for client-side encryption.
func (k *KMG) Group() *group.Group { return k.grp }

// SmoothNode is a hub endpoint running the routing-side of the workflow.
type SmoothNode struct {
	Addr transport.Address
	kmg  *KMG
	tr   transport.Transport

	// MinTU/MaxTU bound the demand split.
	MinTU, MaxTU float64

	mu sync.Mutex
	// tuState tracks outstanding TUs per tid for θ aggregation
	// (state_tid = ∧ θ_tuid).
	tuState map[uint64]*tidState
	// inbox accumulates TUs arriving for payments this node terminates.
	arrived map[uint64][]Demand // tid → TUs received
	// egressFor maps tuid → (tid, origin) to acknowledge correctly.
	egress map[uint64]egressRef

	// seenTUs provides replay protection (threat model §III-B: the
	// adversary can replay messages): a tuid is accepted once.
	seenTUs map[uint64]bool

	// resolver maps a recipient to its managing hub's address.
	resolver EgressResolver

	// Delivered reports completed payments: recipient and total value.
	Delivered func(d Demand)
}

type tidState struct {
	demand   Demand
	total    int
	acked    int
	origin   transport.Address // client address to notify on completion
	egressTo transport.Address
}

type egressRef struct {
	tid    uint64
	origin transport.Address
}

// NewSmoothNode creates a hub bound to addr on tr.
func NewSmoothNode(tr transport.Transport, addr transport.Address, kmg *KMG) (*SmoothNode, error) {
	s := &SmoothNode{
		Addr:    addr,
		kmg:     kmg,
		tr:      tr,
		MinTU:   1,
		MaxTU:   4,
		tuState: map[uint64]*tidState{},
		arrived: map[uint64][]Demand{},
		egress:  map[uint64]egressRef{},
		seenTUs: map[uint64]bool{},
	}
	if err := tr.Register(addr, s.onMessage); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *SmoothNode) onMessage(from transport.Address, payload []byte) {
	m, err := DecodeMessage(payload)
	if err != nil {
		return // drop malformed traffic, as a real node would
	}
	switch m.Kind {
	case MsgPayReq:
		s.handlePayReq(from)
	case MsgExec:
		s.handleExec(from, m)
	case MsgTU:
		s.handleTU(from, m)
	case MsgTUAck:
		s.handleTUAck(m)
	}
}

// handlePayReq performs payment initialization: fresh (tid, pk) from the
// KMG, returned to the client.
func (s *SmoothNode) handlePayReq(client transport.Address) {
	tid, pk, err := s.kmg.FreshKey()
	if err != nil {
		return
	}
	reply := Message{Kind: MsgPayInit, TID: tid, PK: pk}
	if b, err := reply.Encode(); err == nil {
		_ = s.tr.Send(s.Addr, client, b)
	}
}

// EgressResolver maps a recipient to its managing hub's address. Injected
// by the deployment (the simulator or a real roster).
type EgressResolver func(recipient graph.NodeID) (transport.Address, bool)

// SetResolver installs the recipient→hub mapping; must be called before
// payments flow.
func (s *SmoothNode) SetResolver(r EgressResolver) { s.resolver = r }

// handleExec decrypts the demand via the KMG, splits it into TUs and
// forwards each TU, freshly encrypted, to the egress hub.
func (s *SmoothNode) handleExec(client transport.Address, m Message) {
	if s.resolver == nil {
		return
	}
	plain, err := s.kmg.Decrypt(m.TID, group.Ciphertext{C1: m.C1, Data: m.Data})
	if err != nil {
		return
	}
	d, err := decodeDemand(plain)
	if err != nil {
		return
	}
	egressAddr, ok := s.resolver(d.Recipient)
	if !ok {
		return
	}
	parts, err := routing.SplitDemand(d.Value, s.MinTU, s.MaxTU)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.tuState[m.TID] = &tidState{demand: d, total: len(parts), origin: client, egressTo: egressAddr}
	s.mu.Unlock()
	for _, v := range parts {
		tu := Demand{Sender: d.Sender, Recipient: d.Recipient, Value: v}
		tuid, pk, err := s.kmg.FreshKey()
		if err != nil {
			return
		}
		plainTU, err := encodeDemand(tu)
		if err != nil {
			return
		}
		ct, err := s.kmg.Group().Encrypt(nil, pk, plainTU)
		if err != nil {
			return
		}
		out := Message{Kind: MsgTU, TID: m.TID, TUID: tuid, C1: ct.C1, Data: ct.Data, Total: len(parts)}
		if b, err := out.Encode(); err == nil {
			_ = s.tr.Send(s.Addr, egressAddr, b)
		}
	}
}

// handleTU is the egress side: decrypt the TU, record its arrival, ACK.
// Replayed TUs (same tuid) are dropped without effect.
func (s *SmoothNode) handleTU(from transport.Address, m Message) {
	s.mu.Lock()
	if s.seenTUs[m.TUID] {
		s.mu.Unlock()
		return
	}
	s.seenTUs[m.TUID] = true
	s.mu.Unlock()
	plain, err := s.kmg.Decrypt(m.TUID, group.Ciphertext{C1: m.C1, Data: m.Data})
	if err != nil {
		return
	}
	tu, err := decodeDemand(plain)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.arrived[m.TID] = append(s.arrived[m.TID], tu)
	complete := m.Total > 0 && len(s.arrived[m.TID]) == m.Total
	s.mu.Unlock()
	if complete && s.Delivered != nil {
		total := 0.0
		for _, part := range s.arrived[m.TID] {
			total += part.Value
		}
		s.Delivered(Demand{Sender: tu.Sender, Recipient: tu.Recipient, Value: total})
	}
	ack := Message{Kind: MsgTUAck, TID: m.TID, TUID: m.TUID, OK: true}
	if b, err := ack.Encode(); err == nil {
		_ = s.tr.Send(s.Addr, from, b)
	}
}

// handleTUAck updates θ_tuid; when every TU acked (θ_tid = true), the
// payment completes: the egress delivers funds to the recipient in one shot
// and the final ACK flows back to the sender's client address.
func (s *SmoothNode) handleTUAck(m Message) {
	s.mu.Lock()
	st, ok := s.tuState[m.TID]
	if !ok || !m.OK {
		s.mu.Unlock()
		return
	}
	st.acked++
	done := st.acked == st.total
	var origin transport.Address
	var d Demand
	if done {
		origin = st.origin
		d = st.demand
		delete(s.tuState, m.TID)
	}
	s.mu.Unlock()
	if !done {
		return
	}
	if s.Delivered != nil {
		s.Delivered(d)
	}
	fin := Message{Kind: MsgFinalAck, TID: m.TID, OK: true}
	if b, err := fin.Encode(); err == nil {
		_ = s.tr.Send(s.Addr, origin, b)
	}
}

// ArrivedValue returns the total TU value the node has received for tid
// (egress side).
func (s *SmoothNode) ArrivedValue(tid uint64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0.0
	for _, tu := range s.arrived[tid] {
		total += tu.Value
	}
	return total
}

// Client is an end-user endpoint.
type Client struct {
	Addr transport.Address
	Node graph.NodeID
	tr   transport.Transport
	grp  *group.Group
	hub  transport.Address

	mu      sync.Mutex
	pending map[uint64]Demand // tid → demand awaiting final ack
	inits   chan Message
	finals  chan Message
}

// NewClient creates a client bound to addr, managed by the given hub.
func NewClient(tr transport.Transport, addr transport.Address, node graph.NodeID, hub transport.Address, grp *group.Group) (*Client, error) {
	c := &Client{
		Addr:    addr,
		Node:    node,
		tr:      tr,
		grp:     grp,
		hub:     hub,
		pending: map[uint64]Demand{},
		inits:   make(chan Message, 16),
		finals:  make(chan Message, 16),
	}
	if err := tr.Register(addr, c.onMessage); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) onMessage(_ transport.Address, payload []byte) {
	m, err := DecodeMessage(payload)
	if err != nil {
		return
	}
	switch m.Kind {
	case MsgPayInit:
		select {
		case c.inits <- m:
		default:
		}
	case MsgFinalAck:
		select {
		case c.finals <- m:
		default:
		}
	}
}

// Pay runs the full client-side workflow synchronously: payreq, wait for
// (tid, pk), encrypt and send the demand, wait for the final ACK. The
// transports here deliver synchronously (InProc) or near-instantly (TCP
// loopback), so the channel waits are short; no timeout plumbing is needed
// at this layer.
func (c *Client) Pay(recipient graph.NodeID, value float64) error {
	if value <= 0 {
		return fmt.Errorf("protocol: value must be positive, got %v", value)
	}
	req := Message{Kind: MsgPayReq}
	b, err := req.Encode()
	if err != nil {
		return err
	}
	if err := c.tr.Send(c.Addr, c.hub, b); err != nil {
		return err
	}
	init := <-c.inits
	d := Demand{Sender: c.Node, Recipient: recipient, Value: value}
	plain, err := encodeDemand(d)
	if err != nil {
		return err
	}
	ct, err := c.grp.Encrypt(nil, init.PK, plain)
	if err != nil {
		return err
	}
	exec := Message{Kind: MsgExec, TID: init.TID, C1: ct.C1, Data: ct.Data}
	if b, err = exec.Encode(); err != nil {
		return err
	}
	c.mu.Lock()
	c.pending[init.TID] = d
	c.mu.Unlock()
	if err := c.tr.Send(c.Addr, c.hub, b); err != nil {
		return err
	}
	fin := <-c.finals
	if fin.TID != init.TID || !fin.OK {
		return fmt.Errorf("protocol: payment %d not acknowledged", init.TID)
	}
	c.mu.Lock()
	delete(c.pending, init.TID)
	c.mu.Unlock()
	return nil
}
