package protocol

import (
	"math"
	"math/big"
	"testing"
	"time"

	"github.com/splicer-pcn/splicer/internal/graph"
	"github.com/splicer-pcn/splicer/internal/group"
	"github.com/splicer-pcn/splicer/internal/transport"
)

// deployment wires two hubs and two clients over a transport.
type deployment struct {
	kmg          *KMG
	hubA, hubB   *SmoothNode
	alice, bob   *Client
	deliveredVal float64
	deliveredTo  graph.NodeID
}

func newDeployment(t *testing.T, tr transport.Transport) *deployment {
	t.Helper()
	kmg, err := NewKMG(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	hubA, err := NewSmoothNode(tr, "hub-a", kmg)
	if err != nil {
		t.Fatal(err)
	}
	hubB, err := NewSmoothNode(tr, "hub-b", kmg)
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{kmg: kmg, hubA: hubA, hubB: hubB}
	// Clients: alice (node 1) on hub A, bob (node 2) on hub B.
	resolver := func(r graph.NodeID) (transport.Address, bool) {
		switch r {
		case 1:
			return "hub-a", true
		case 2:
			return "hub-b", true
		default:
			return "", false
		}
	}
	hubA.SetResolver(resolver)
	hubB.SetResolver(resolver)
	hubB.Delivered = func(dd Demand) {
		d.deliveredVal += dd.Value
		d.deliveredTo = dd.Recipient
	}
	alice, err := NewClient(tr, "alice", 1, "hub-a", kmg.Group())
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewClient(tr, "bob", 2, "hub-b", kmg.Group())
	if err != nil {
		t.Fatal(err)
	}
	d.alice, d.bob = alice, bob
	return d
}

func TestEndToEndPaymentInProc(t *testing.T) {
	tr := transport.NewInProc()
	d := newDeployment(t, tr)
	// 10 tokens → split into 3 TUs (4+4+2 or similar), all must arrive.
	if err := d.alice.Pay(2, 10); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.deliveredVal-10) > 1e-9 || d.deliveredTo != 2 {
		t.Fatalf("delivered %v to %v", d.deliveredVal, d.deliveredTo)
	}
}

func TestSmallPaymentSingleTU(t *testing.T) {
	tr := transport.NewInProc()
	d := newDeployment(t, tr)
	if err := d.alice.Pay(2, 0.5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.deliveredVal-0.5) > 1e-9 {
		t.Fatalf("delivered %v", d.deliveredVal)
	}
}

func TestPayValidation(t *testing.T) {
	tr := transport.NewInProc()
	d := newDeployment(t, tr)
	if err := d.alice.Pay(2, 0); err == nil {
		t.Fatal("zero-value payment accepted")
	}
}

func TestEndToEndPaymentTCP(t *testing.T) {
	tr := transport.NewTCP()
	defer tr.Close()
	d := newDeployment(t, tr)
	done := make(chan error, 1)
	go func() { done <- d.alice.Pay(2, 7) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("TCP payment timed out")
	}
	if math.Abs(d.deliveredVal-7) > 1e-9 {
		t.Fatalf("delivered %v", d.deliveredVal)
	}
}

func TestDemandConfidentiality(t *testing.T) {
	// The MsgExec payload must not contain the plaintext demand: a probe
	// transport records every frame and we check the recipient id and value
	// never appear in clear.
	probe := &recordingTransport{InProc: transport.NewInProc()}
	d := newDeployment(t, probe)
	if err := d.alice.Pay(2, 10); err != nil {
		t.Fatal(err)
	}
	plain, err := encodeDemand(Demand{Sender: 1, Recipient: 2, Value: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range probe.frames {
		m, err := DecodeMessage(frame)
		if err != nil {
			continue
		}
		if m.Kind != MsgExec && m.Kind != MsgTU {
			continue
		}
		if containsSubslice(m.Data, plain) {
			t.Fatal("demand plaintext leaked on the wire")
		}
	}
	if len(probe.frames) == 0 {
		t.Fatal("probe recorded nothing")
	}
}

func containsSubslice(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

type recordingTransport struct {
	*transport.InProc
	frames [][]byte
}

func (r *recordingTransport) Send(from, to transport.Address, payload []byte) error {
	r.frames = append(r.frames, append([]byte(nil), payload...))
	return r.InProc.Send(from, to, payload)
}

func TestTUSplittingRespectsBounds(t *testing.T) {
	tr := transport.NewInProc()
	d := newDeployment(t, tr)
	if err := d.alice.Pay(2, 11); err != nil {
		t.Fatal(err)
	}
	// hub-b accumulated the TUs for tid 0 (first payment in this KMG).
	tus := d.hubB.arrived[0]
	if len(tus) < 3 {
		t.Fatalf("expected >= 3 TUs for value 11, got %d", len(tus))
	}
	total := 0.0
	for _, tu := range tus {
		if tu.Value < 1-1e-9 || tu.Value > 4+1e-9 {
			t.Fatalf("TU value %v outside [1,4]", tu.Value)
		}
		total += tu.Value
	}
	if math.Abs(total-11) > 1e-9 {
		t.Fatalf("TUs sum to %v", total)
	}
	if got := d.hubB.ArrivedValue(0); math.Abs(got-11) > 1e-9 {
		t.Fatalf("ArrivedValue = %v", got)
	}
}

func TestKMGValidation(t *testing.T) {
	if _, err := NewKMG(0, 1); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewKMG(3, 4); err == nil {
		t.Fatal("threshold > size accepted")
	}
}

func TestKMGUnknownKey(t *testing.T) {
	kmg, err := NewKMG(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ct := group.Ciphertext{C1: big.NewInt(4), Data: []byte("x")}
	if _, err := kmg.Decrypt(99, ct); err == nil {
		t.Fatal("unknown key id accepted")
	}
}
