package protocol

import (
	"math"
	"testing"

	"github.com/splicer-pcn/splicer/internal/transport"
)

// adversarialTransport implements the §III-B threat model on the wire: it
// can replay, drop, or reorder frames between registered endpoints.
type adversarialTransport struct {
	*transport.InProc
	// replayKinds replays matching messages once more.
	replayKinds map[MsgKind]bool
	// dropKinds silently discards matching messages.
	dropKinds map[MsgKind]bool
	replayed  int
	dropped   int
}

func newAdversary() *adversarialTransport {
	return &adversarialTransport{
		InProc:      transport.NewInProc(),
		replayKinds: map[MsgKind]bool{},
		dropKinds:   map[MsgKind]bool{},
	}
}

func (a *adversarialTransport) Send(from, to transport.Address, payload []byte) error {
	if m, err := DecodeMessage(payload); err == nil {
		if a.dropKinds[m.Kind] {
			a.dropped++
			return nil // swallowed by the adversary
		}
		if a.replayKinds[m.Kind] {
			a.replayed++
			if err := a.InProc.Send(from, to, payload); err != nil {
				return err
			}
			// ... and deliver again.
			return a.InProc.Send(from, to, payload)
		}
	}
	return a.InProc.Send(from, to, payload)
}

func TestReplayedTUsDeliverOnce(t *testing.T) {
	adv := newAdversary()
	adv.replayKinds[MsgTU] = true
	d := newDeployment(t, adv)
	if err := d.alice.Pay(2, 10); err != nil {
		t.Fatal(err)
	}
	if adv.replayed == 0 {
		t.Fatal("adversary replayed nothing; test is vacuous")
	}
	// Despite every TU being delivered twice, the recipient receives the
	// demanded value exactly once.
	if math.Abs(d.deliveredVal-10) > 1e-9 {
		t.Fatalf("delivered %v after replay, want exactly 10", d.deliveredVal)
	}
}

func TestDroppedTUsFailSafely(t *testing.T) {
	adv := newAdversary()
	adv.dropKinds[MsgTU] = true
	d := newDeployment(t, adv)
	// The payment cannot complete (all TUs vanish), but nothing must be
	// delivered and the node state must stay consistent. Pay would block on
	// the final ack, so drive the workflow manually up to Exec.
	done := make(chan error, 1)
	go func() { done <- d.alice.Pay(2, 10) }()
	// Give the synchronous InProc pipeline a beat; the TUs are dropped
	// inline so delivery state is already final.
	if adv.dropped == 0 {
		// The goroutine may not have run yet; spin briefly.
		for i := 0; i < 1000 && adv.dropped == 0; i++ {
		}
	}
	if d.deliveredVal != 0 {
		t.Fatalf("delivered %v with all TUs dropped", d.deliveredVal)
	}
	select {
	case err := <-done:
		t.Fatalf("Pay returned (%v) despite dropped TUs", err)
	default:
		// Expected: the payment hangs awaiting acknowledgment; a real
		// deployment would time it out and the hub would withdraw the
		// failed transaction (threat model: failures cause no loss).
	}
}

func TestReplayedAcksHarmless(t *testing.T) {
	adv := newAdversary()
	adv.replayKinds[MsgTUAck] = true
	d := newDeployment(t, adv)
	if err := d.alice.Pay(2, 10); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.deliveredVal-10) > 1e-9 {
		t.Fatalf("delivered %v with replayed ACKs", d.deliveredVal)
	}
	// A second payment still works (state not corrupted).
	if err := d.alice.Pay(2, 5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.deliveredVal-15) > 1e-9 {
		t.Fatalf("delivered %v after second payment", d.deliveredVal)
	}
}
