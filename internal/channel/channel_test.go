package channel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/splicer-pcn/splicer/internal/rng"
)

func newChan(t *testing.T, fwd, rev float64) *Channel {
	t.Helper()
	c, err := New(0, 1, 2, fwd, rev)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 2, -1, 5); err == nil {
		t.Fatal("negative balance accepted")
	}
}

func TestDirFrom(t *testing.T) {
	c := newChan(t, 10, 10)
	if c.DirFrom(1) != Fwd || c.DirFrom(2) != Rev {
		t.Fatal("DirFrom wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-endpoint")
		}
	}()
	c.DirFrom(9)
}

func TestLockSettleMovesFunds(t *testing.T) {
	c := newChan(t, 10, 5)
	if err := c.Lock(Fwd, 4); err != nil {
		t.Fatal(err)
	}
	if c.Balance(Fwd) != 6 || c.Locked(Fwd) != 4 {
		t.Fatalf("after lock: bal=%v locked=%v", c.Balance(Fwd), c.Locked(Fwd))
	}
	if err := c.Settle(Fwd, 4); err != nil {
		t.Fatal(err)
	}
	if c.Balance(Fwd) != 6 || c.Balance(Rev) != 9 || c.Locked(Fwd) != 0 {
		t.Fatalf("after settle: fwd=%v rev=%v", c.Balance(Fwd), c.Balance(Rev))
	}
	// Total funds conserved.
	if math.Abs(c.Capacity()-15) > 1e-9 {
		t.Fatalf("capacity = %v", c.Capacity())
	}
}

func TestLockRefundRestores(t *testing.T) {
	c := newChan(t, 10, 5)
	if err := c.Lock(Fwd, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Refund(Fwd, 4); err != nil {
		t.Fatal(err)
	}
	if c.Balance(Fwd) != 10 || c.Locked(Fwd) != 0 || c.Balance(Rev) != 5 {
		t.Fatal("refund did not restore state")
	}
}

func TestLockInsufficient(t *testing.T) {
	c := newChan(t, 3, 3)
	if err := c.Lock(Fwd, 5); err == nil {
		t.Fatal("overdraft lock accepted")
	}
	if err := c.Lock(Fwd, 0); err == nil {
		t.Fatal("zero lock accepted")
	}
}

func TestSettleRefundValidation(t *testing.T) {
	c := newChan(t, 10, 10)
	if err := c.Settle(Fwd, 1); err == nil {
		t.Fatal("settle without lock accepted")
	}
	if err := c.Refund(Fwd, 1); err == nil {
		t.Fatal("refund without lock accepted")
	}
}

func TestProcessRateLimit(t *testing.T) {
	c := newChan(t, 100, 100)
	c.ProcessRate = 10
	if !c.CanForward(Fwd, 8) {
		t.Fatal("should forward under rate")
	}
	if err := c.Lock(Fwd, 8); err != nil {
		t.Fatal(err)
	}
	if c.CanForward(Fwd, 5) {
		t.Fatal("rate limit not enforced")
	}
	// The reverse direction has its own budget.
	if !c.CanForward(Rev, 5) {
		t.Fatal("rate limit leaked across directions")
	}
	// Window reset restores the budget.
	c.UpdatePrices(0, 0)
	if !c.CanForward(Fwd, 5) {
		t.Fatal("rate budget not reset")
	}
}

func TestPriceDynamics(t *testing.T) {
	c := newChan(t, 50, 50)
	// Demand far above capacity raises λ.
	c.AddRequired(Fwd, 120)
	c.AddRequired(Rev, 30)
	c.UpdatePrices(0.01, 0.01)
	if c.Lambda() <= 0 {
		t.Fatal("lambda did not rise under excess demand")
	}
	// One-sided arrivals raise μ for that direction and keep the other at 0.
	if err := c.Lock(Fwd, 20); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(Fwd, 20); err != nil {
		t.Fatal(err)
	}
	c.UpdatePrices(0.01, 0.01)
	if c.Mu(Fwd) <= 0 {
		t.Fatalf("mu fwd = %v, want > 0", c.Mu(Fwd))
	}
	if c.Mu(Rev) != 0 {
		t.Fatalf("mu rev = %v, want 0", c.Mu(Rev))
	}
	// Price in the hot direction must exceed the cold direction (eq. 23).
	if c.Price(Fwd) <= c.Price(Rev) {
		t.Fatalf("price fwd %v <= rev %v", c.Price(Fwd), c.Price(Rev))
	}
}

func TestLambdaDecaysWhenUnderused(t *testing.T) {
	c := newChan(t, 50, 50)
	c.AddRequired(Fwd, 500)
	c.UpdatePrices(0.01, 0)
	high := c.Lambda()
	// No demand now: λ decreases (and never below 0).
	c.UpdatePrices(0.01, 0)
	if c.Lambda() >= high {
		t.Fatal("lambda did not decay")
	}
	for i := 0; i < 100; i++ {
		c.UpdatePrices(0.01, 0)
	}
	if c.Lambda() < 0 {
		t.Fatal("lambda went negative")
	}
}

func TestFee(t *testing.T) {
	c := newChan(t, 10, 10)
	c.AddRequired(Fwd, 100)
	c.UpdatePrices(0.05, 0)
	if c.Fee(Fwd, 0.1) <= 0 {
		t.Fatal("fee should be positive when price is")
	}
	if math.Abs(c.Fee(Fwd, 0.1)-0.1*c.Price(Fwd)) > 1e-12 {
		t.Fatal("fee != T_fee * price")
	}
}

func TestQueueBasics(t *testing.T) {
	c := newChan(t, 10, 10)
	c.QueueLimit = 10
	mk := func(id uint64, v float64) *QueuedTU {
		return &QueuedTU{ID: id, Value: v, Deadline: 100, Enqueued: 0}
	}
	if err := c.Enqueue(Fwd, mk(1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(Fwd, mk(2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(Fwd, mk(3, 4)); err == nil {
		t.Fatal("queue limit not enforced")
	}
	if c.QueueLen(Fwd) != 2 || c.QueueValue(Fwd) != 8 {
		t.Fatalf("len=%d val=%v", c.QueueLen(Fwd), c.QueueValue(Fwd))
	}
	if c.QueueLen(Rev) != 0 {
		t.Fatal("queue leaked across directions")
	}
}

func TestEnqueueValidation(t *testing.T) {
	c := newChan(t, 10, 10)
	if err := c.Enqueue(Fwd, nil); err == nil {
		t.Fatal("nil TU accepted")
	}
	if err := c.Enqueue(Fwd, &QueuedTU{Value: 0}); err == nil {
		t.Fatal("zero-value TU accepted")
	}
}

func TestSchedulers(t *testing.T) {
	q := []*QueuedTU{
		{ID: 1, Value: 5, Deadline: 30, Enqueued: 0},
		{ID: 2, Value: 1, Deadline: 10, Enqueued: 1},
		{ID: 3, Value: 3, Deadline: 20, Enqueued: 2},
	}
	cases := []struct {
		s    Scheduler
		want uint64
	}{
		{FIFO{}, 1},
		{LIFO{}, 3},
		{SPF{}, 2},
		{EDF{}, 2},
	}
	for _, c := range cases {
		if got := q[c.s.Next(q)].ID; got != c.want {
			t.Fatalf("%s picked %d, want %d", c.s.Name(), got, c.want)
		}
	}
}

func TestSchedulerByName(t *testing.T) {
	for _, name := range []string{"FIFO", "LIFO", "SPF", "EDF"} {
		s, err := SchedulerByName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("SchedulerByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := SchedulerByName("BOGUS"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestDequeueWithScheduler(t *testing.T) {
	c := newChan(t, 10, 10)
	for i := uint64(1); i <= 3; i++ {
		if err := c.Enqueue(Fwd, &QueuedTU{ID: i, Value: float64(i), Deadline: 100}); err != nil {
			t.Fatal(err)
		}
	}
	tu := c.Dequeue(Fwd, LIFO{})
	if tu.ID != 3 {
		t.Fatalf("LIFO dequeued %d", tu.ID)
	}
	if c.QueueLen(Fwd) != 2 {
		t.Fatalf("queue len = %d", c.QueueLen(Fwd))
	}
	if c.Dequeue(Rev, FIFO{}) != nil {
		t.Fatal("dequeue on empty queue returned TU")
	}
}

func TestMarkStale(t *testing.T) {
	c := newChan(t, 10, 10)
	tu1 := &QueuedTU{ID: 1, Value: 1, Deadline: 100, Enqueued: 0}
	tu2 := &QueuedTU{ID: 2, Value: 1, Deadline: 100, Enqueued: 5}
	if err := c.Enqueue(Fwd, tu1); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(Fwd, tu2); err != nil {
		t.Fatal(err)
	}
	marked := c.MarkStale(Fwd, 5.5, 0.4) // tu1 waited 5.5 > 0.4, tu2 only 0.5 > 0.4 too
	if len(marked) != 2 {
		t.Fatalf("marked %d", len(marked))
	}
	// Second call returns nothing (already marked).
	if len(c.MarkStale(Fwd, 6, 0.4)) != 0 {
		t.Fatal("re-marked TUs")
	}
}

func TestRemoveQueued(t *testing.T) {
	c := newChan(t, 10, 10)
	tu := &QueuedTU{ID: 1, Value: 1, Deadline: 100}
	if err := c.Enqueue(Fwd, tu); err != nil {
		t.Fatal(err)
	}
	if !c.RemoveQueued(Fwd, tu) {
		t.Fatal("RemoveQueued failed")
	}
	if c.RemoveQueued(Fwd, tu) {
		t.Fatal("double remove succeeded")
	}
}

func TestImbalance(t *testing.T) {
	c := newChan(t, 10, 10)
	if c.Imbalance() != 0 {
		t.Fatalf("balanced channel imbalance = %v", c.Imbalance())
	}
	if err := c.Lock(Fwd, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(Fwd, 10); err != nil {
		t.Fatal(err)
	}
	// Now fwd=0, rev=20 → imbalance 1.
	if math.Abs(c.Imbalance()-1) > 1e-9 {
		t.Fatalf("imbalance = %v, want 1", c.Imbalance())
	}
}

func TestPropertyConservation(t *testing.T) {
	// Random lock/settle/refund sequences conserve total channel funds and
	// never drive balances negative.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c, err := New(0, 1, 2, 100, 100)
		if err != nil {
			return false
		}
		type pending struct {
			d Direction
			v float64
		}
		var locks []pending
		for step := 0; step < 200; step++ {
			switch src.IntN(3) {
			case 0:
				d := Direction(src.IntN(2))
				v := src.Float64()*30 + 0.1
				if c.Lock(d, v) == nil {
					locks = append(locks, pending{d, v})
				}
			case 1:
				if len(locks) > 0 {
					i := src.IntN(len(locks))
					if err := c.Settle(locks[i].d, locks[i].v); err != nil {
						return false
					}
					locks = append(locks[:i], locks[i+1:]...)
				}
			case 2:
				if len(locks) > 0 {
					i := src.IntN(len(locks))
					if err := c.Refund(locks[i].d, locks[i].v); err != nil {
						return false
					}
					locks = append(locks[:i], locks[i+1:]...)
				}
			}
			if c.Balance(Fwd) < -1e-9 || c.Balance(Rev) < -1e-9 {
				return false
			}
			if math.Abs(c.Capacity()-200) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLockToleratesFloatDrift(t *testing.T) {
	// A lock value a few ulps above the balance (accumulated TU-splitting
	// drift) must succeed under the same 1e-9 tolerance Settle/Refund use.
	c := newChan(t, 0.3, 1)
	tenth := 0.1 // runtime value: constant folding would give exactly 0.3
	v := tenth + tenth + tenth
	if v <= 0.3 {
		t.Fatal("test premise: v must exceed the balance by an ulp")
	}
	if !c.CanForward(Fwd, v) {
		t.Fatalf("CanForward rejected %v against balance 0.3: drifted TUs would stall queued", v)
	}
	before := c.Capacity()
	if err := c.Lock(Fwd, v); err != nil {
		t.Fatalf("Lock rejected %v against balance 0.3: %v", v, err)
	}
	if b := c.Balance(Fwd); b < 0 {
		t.Fatalf("tolerance drove balance negative: %v", b)
	}
	if l := c.Locked(Fwd); math.Abs(l-v) > 1e-9 {
		t.Fatalf("locked %v, want %v within tolerance", l, v)
	}
	// The locked funds settle cleanly, and the tolerance must not mint or
	// destroy funds anywhere along the way.
	if err := c.Settle(Fwd, v); err != nil {
		t.Fatal(err)
	}
	if after := c.Capacity(); math.Abs(after-before) > 1e-12 {
		t.Fatalf("drift-tolerant lock/settle changed total funds: %v -> %v", before, after)
	}
}

func TestLockBeyondToleranceRejected(t *testing.T) {
	c := newChan(t, 10, 10)
	if err := c.Lock(Fwd, 10.001); err == nil {
		t.Fatal("Lock accepted a value 1e-3 over the balance")
	}
	if c.Balance(Fwd) != 10 || c.Locked(Fwd) != 0 {
		t.Fatalf("failed lock mutated state: balance %v locked %v", c.Balance(Fwd), c.Locked(Fwd))
	}
}

func TestLockEnforcesProcessRate(t *testing.T) {
	// Lock must enforce the rate limit itself: CanForward is advisory and
	// callers must not be able to bypass r_process.
	c := newChan(t, 100, 100)
	c.ProcessRate = 10
	if err := c.Lock(Fwd, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(Fwd, 8); err == nil {
		t.Fatal("Lock exceeded ProcessRate without CanForward guarding it")
	}
	// The reverse direction has its own budget.
	if err := c.Lock(Rev, 8); err != nil {
		t.Fatal(err)
	}
	// The window reset restores the budget.
	c.UpdatePrices(0, 0)
	if err := c.Lock(Fwd, 8); err != nil {
		t.Fatalf("rate budget not reset: %v", err)
	}
}

func TestCanForwardImpliesLock(t *testing.T) {
	// Whenever CanForward approves a value, Lock must accept it: the seed's
	// asymmetry let queue-drained TUs pass the check and then fail the lock.
	c := newChan(t, 25, 25)
	c.ProcessRate = 12
	for _, v := range []float64{1, 4, 11.9999999999, 12} {
		if !c.CanForward(Fwd, v) {
			continue
		}
		if err := c.Lock(Fwd, v); err != nil {
			t.Fatalf("CanForward approved %v but Lock failed: %v", v, err)
		}
		if err := c.Refund(Fwd, v); err != nil {
			t.Fatal(err)
		}
		c.UpdatePrices(0, 0)
	}
}
