// Package channel models a bidirectional payment channel at the granularity
// Splicer's routing protocol needs: independent per-direction balances,
// HTLC-style locking of in-flight transaction-units, the capacity price λ
// and imbalance prices μ of §IV-D (eqs. 21-23), a bounded waiting queue with
// pluggable scheduling (Table II: FIFO/LIFO/SPF/EDF), and a per-direction
// processing-rate limit r_process.
package channel

import (
	"fmt"
	"math"

	"github.com/splicer-pcn/splicer/internal/graph"
)

// Direction selects one side of a channel: 0 routes U→V, 1 routes V→U.
type Direction int

// Directions.
const (
	Fwd Direction = 0
	Rev Direction = 1
)

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction { return 1 - d }

// QueuedTU is a transaction-unit waiting in a channel queue.
type QueuedTU struct {
	ID       uint64
	Value    float64
	Deadline float64 // absolute sim time the parent payment expires
	Enqueued float64 // when it entered this queue
	Marked   bool    // congestion mark (queueing delay exceeded T)
	// Resume is invoked when the TU is dequeued for another forwarding
	// attempt.
	Resume func()
}

// Scheduler orders a channel's waiting queue. Given the queue contents it
// returns the index of the TU to serve next. Implementations must not
// mutate the slice.
type Scheduler interface {
	Name() string
	Next(queue []*QueuedTU) int
}

// FIFO serves the oldest TU first.
type FIFO struct{}

// Name implements Scheduler.
func (FIFO) Name() string { return "FIFO" }

// Next implements Scheduler.
func (FIFO) Next(q []*QueuedTU) int { return 0 }

// LIFO serves the newest TU first — the paper's best performer: it
// prioritizes transactions far from their deadlines.
type LIFO struct{}

// Name implements Scheduler.
func (LIFO) Name() string { return "LIFO" }

// Next implements Scheduler.
func (LIFO) Next(q []*QueuedTU) int { return len(q) - 1 }

// SPF serves the smallest payment first.
type SPF struct{}

// Name implements Scheduler.
func (SPF) Name() string { return "SPF" }

// Next implements Scheduler.
func (SPF) Next(q []*QueuedTU) int {
	best := 0
	for i, tu := range q {
		if tu.Value < q[best].Value {
			best = i
		}
	}
	return best
}

// EDF serves the earliest deadline first.
type EDF struct{}

// Name implements Scheduler.
func (EDF) Name() string { return "EDF" }

// Next implements Scheduler.
func (EDF) Next(q []*QueuedTU) int {
	best := 0
	for i, tu := range q {
		if tu.Deadline < q[best].Deadline {
			best = i
		}
	}
	return best
}

// SchedulerByName returns the named scheduler (FIFO, LIFO, SPF, EDF).
func SchedulerByName(name string) (Scheduler, error) {
	switch name {
	case "FIFO":
		return FIFO{}, nil
	case "LIFO":
		return LIFO{}, nil
	case "SPF":
		return SPF{}, nil
	case "EDF":
		return EDF{}, nil
	default:
		return nil, fmt.Errorf("channel: unknown scheduler %q", name)
	}
}

// dirState is the per-direction mutable state.
type dirState struct {
	balance  float64 // spendable funds in this direction
	locked   float64 // in-flight (HTLC-locked) funds
	arrived  float64 // value that entered in this direction this window (m_a)
	required float64 // funds required to sustain current rates (n_a)
	mu       float64 // imbalance price μ for this direction
	queue    []*QueuedTU
}

// Channel is one payment channel's full routing state.
type Channel struct {
	Edge graph.EdgeID
	U, V graph.NodeID

	dirs [2]dirState

	lambda float64 // capacity price λ (one per channel, eq. 21)

	// ProcessRate bounds the value/second each direction can forward
	// (r_process in Alg. 2 line 10); 0 means unlimited.
	ProcessRate float64
	// QueueLimit bounds the total value waiting per direction (the paper
	// sets 8000 tokens); 0 means unlimited.
	QueueLimit float64
	// MaxInFlight bounds the number of simultaneously locked (in-flight)
	// HTLCs per direction — Lightning's max_accepted_htlcs slot limit, the
	// resource slot-jamming attacks exhaust; 0 means unlimited.
	MaxInFlight int

	processed [2]float64 // value forwarded this window, for rate limiting
	inflight  [2]int     // locked HTLC count per direction, for MaxInFlight
	closed    bool
}

// New creates a channel with the given initial per-direction balances.
func New(edge graph.EdgeID, u, v graph.NodeID, balFwd, balRev float64) (*Channel, error) {
	if balFwd < 0 || balRev < 0 {
		return nil, fmt.Errorf("channel: negative balance")
	}
	c := &Channel{Edge: edge, U: u, V: v}
	c.dirs[Fwd].balance = balFwd
	c.dirs[Rev].balance = balRev
	return c, nil
}

// DirFrom maps an origin node to a direction. It panics if from is not an
// endpoint.
func (c *Channel) DirFrom(from graph.NodeID) Direction {
	switch from {
	case c.U:
		return Fwd
	case c.V:
		return Rev
	default:
		panic(fmt.Sprintf("channel: node %d not an endpoint of edge %d", from, c.Edge))
	}
}

// Balance returns the spendable funds in direction d.
func (c *Channel) Balance(d Direction) float64 { return c.dirs[d].balance }

// Locked returns the in-flight funds in direction d.
func (c *Channel) Locked(d Direction) float64 { return c.dirs[d].locked }

// Capacity returns the channel's total funds (both balances plus locked).
func (c *Channel) Capacity() float64 {
	return c.dirs[0].balance + c.dirs[1].balance + c.dirs[0].locked + c.dirs[1].locked
}

// Close marks the channel closed (the on-chain closing transaction is
// broadcast): no new forwards can be locked, but already-locked HTLCs remain
// settleable/refundable — exactly the guarantee the HTLC contract enforces
// on-chain. Idempotent.
func (c *Channel) Close() { c.closed = true }

// Closed reports whether the channel has been closed.
func (c *Channel) Closed() bool { return c.closed }

// Deposit adds spendable funds to direction d (a top-up / splice-in). It
// fails on closed channels and negative amounts.
func (c *Channel) Deposit(d Direction, v float64) error {
	if c.closed {
		return fmt.Errorf("channel: deposit on closed channel %d", c.Edge)
	}
	if v < 0 {
		return fmt.Errorf("channel: negative deposit %v", v)
	}
	c.dirs[d].balance += v
	return nil
}

// Rebalance moves `fraction` of the spendable-balance gap from the richer
// side to the poorer side (an off-chain circular rebalancing / submarine
// swap, abstracted to its effect). It returns the amount moved; 0 when the
// channel is closed, balanced, or fraction is not in (0, 1].
func (c *Channel) Rebalance(fraction float64) float64 {
	if c.closed || fraction <= 0 || fraction > 1 {
		return 0
	}
	gap := c.dirs[Fwd].balance - c.dirs[Rev].balance
	rich, poor := Fwd, Rev
	if gap < 0 {
		gap, rich, poor = -gap, Rev, Fwd
	}
	// Move toward equality: half the gap closes it completely.
	moved := fraction * gap / 2
	c.dirs[rich].balance -= moved
	c.dirs[poor].balance += moved
	return moved
}

// CanForward reports whether value v can currently be locked in direction d
// under both the balance and the processing-rate constraint. It applies the
// same 1e-9 tolerance as Lock (and Settle/Refund), so a TU whose value
// drifted a few ulps above the balance is forwarded rather than stalling in
// the queue until its deadline. Closed channels never forward.
func (c *Channel) CanForward(d Direction, v float64) bool {
	if c.closed {
		return false
	}
	if c.dirs[d].balance < v-1e-9 {
		return false
	}
	if c.ProcessRate > 0 && c.processed[d]+v > c.ProcessRate+1e-9 {
		return false
	}
	if c.MaxInFlight > 0 && c.inflight[d] >= c.MaxInFlight {
		return false
	}
	return true
}

// Lock reserves value v in direction d (an HTLC offer). The funds leave the
// spendable balance until Settle or Refund.
//
// Lock applies the same 1e-9 tolerance Settle and Refund use, so a TU whose
// value drifted a few ulps above the balance (repeated TU splitting and
// refunds accumulate float error) cannot pass CanForward and then fail
// here. It also enforces ProcessRate itself: CanForward is advisory and
// callers must not be able to exceed the per-window rate limit by skipping
// it.
func (c *Channel) Lock(d Direction, v float64) error {
	if c.closed {
		return fmt.Errorf("channel: lock on closed channel %d", c.Edge)
	}
	if v <= 0 {
		return fmt.Errorf("channel: lock value must be positive, got %v", v)
	}
	if c.dirs[d].balance < v-1e-9 {
		return fmt.Errorf("channel: insufficient funds in direction %d: have %v, need %v", d, c.dirs[d].balance, v)
	}
	if c.ProcessRate > 0 && c.processed[d]+v > c.ProcessRate+1e-9 {
		return fmt.Errorf("channel: rate limit %v exceeded in direction %d: processed %v, lock %v", c.ProcessRate, d, c.processed[d], v)
	}
	if c.MaxInFlight > 0 && c.inflight[d] >= c.MaxInFlight {
		return fmt.Errorf("channel: HTLC slots exhausted in direction %d: %d in flight, limit %d", d, c.inflight[d], c.MaxInFlight)
	}
	// Move exactly what the balance holds (the tolerance covers at most a
	// 1e-9 shortfall): deducting the full v and clamping would mint funds.
	moved := min(v, c.dirs[d].balance)
	c.dirs[d].balance -= moved
	c.dirs[d].locked += moved
	c.processed[d] += v
	c.inflight[d]++
	return nil
}

// Settle completes a locked forward: the value moves to the other side's
// spendable balance (receiver can now spend it back), and the arrival is
// recorded for the imbalance price update. Like Lock, it moves exactly what
// the locked bucket holds when the 1e-9 tolerance absorbed a drift
// shortfall, so total channel funds are conserved exactly.
func (c *Channel) Settle(d Direction, v float64) error {
	if v <= 0 || c.dirs[d].locked < v-1e-9 {
		return fmt.Errorf("channel: settle %v exceeds locked %v", v, c.dirs[d].locked)
	}
	moved := min(v, c.dirs[d].locked)
	c.dirs[d].locked -= moved
	c.dirs[d.Reverse()].balance += moved
	c.dirs[d].arrived += moved
	if c.inflight[d] > 0 {
		c.inflight[d]--
	}
	return nil
}

// Refund aborts a locked forward, returning the funds to the sender side.
// It conserves funds exactly the way Settle does.
func (c *Channel) Refund(d Direction, v float64) error {
	if v <= 0 || c.dirs[d].locked < v-1e-9 {
		return fmt.Errorf("channel: refund %v exceeds locked %v", v, c.dirs[d].locked)
	}
	moved := min(v, c.dirs[d].locked)
	c.dirs[d].locked -= moved
	c.dirs[d].balance += moved
	if c.inflight[d] > 0 {
		c.inflight[d]--
	}
	return nil
}

// InFlight returns the number of locked HTLCs in direction d.
func (c *Channel) InFlight(d Direction) int { return c.inflight[d] }

// AddRequired records funds required to maintain flow rates through the
// endpoint on direction d (n_a in eq. 21); accumulated per window.
func (c *Channel) AddRequired(d Direction, v float64) {
	c.dirs[d].required += v
}

// UpdatePrices applies eqs. 21-22 for one τ window and resets the window
// statistics. κ controls the capacity-price step, η the imbalance step.
// Prices are clamped at zero from below.
func (c *Channel) UpdatePrices(kappa, eta float64) {
	nA := c.dirs[Fwd].required
	nB := c.dirs[Rev].required
	cap := c.Capacity()
	c.lambda += kappa * (nA + nB - cap)
	if c.lambda < 0 {
		c.lambda = 0
	}
	mA := c.dirs[Fwd].arrived
	mB := c.dirs[Rev].arrived
	c.dirs[Fwd].mu += eta * (mA - mB)
	if c.dirs[Fwd].mu < 0 {
		c.dirs[Fwd].mu = 0
	}
	c.dirs[Rev].mu += eta * (mB - mA)
	if c.dirs[Rev].mu < 0 {
		c.dirs[Rev].mu = 0
	}
	for d := range c.dirs {
		c.dirs[d].arrived = 0
		c.dirs[d].required = 0
	}
	c.processed[0] = 0
	c.processed[1] = 0
}

// NeedsMaintenance reports whether the next τ-tick maintenance pass can
// observably change this channel: a positive capacity price still decaying
// toward zero, unreset window statistics, or a waiting queue. For a channel
// where this is false, UpdatePrices (either parameterization), MarkStale
// and a queue drain are all no-ops — λ moves by κ·(n_a+n_b−cap), clamped at
// zero when the stats are zero, and μ by η·(m_a−m_b), exactly zero then (a
// residual μ>0 is held, not decayed, so it alone needs no tick) — and the
// tick scheduler can skip the channel without changing a single bit of the
// simulation. This is what turns the per-tick channel sweep from O(C) into
// O(active).
func (c *Channel) NeedsMaintenance() bool {
	if c.closed {
		return false
	}
	if c.lambda > 0 || c.processed[0] != 0 || c.processed[1] != 0 {
		return true
	}
	for d := range c.dirs {
		ds := &c.dirs[d]
		if ds.arrived != 0 || ds.required != 0 || len(ds.queue) > 0 {
			return true
		}
	}
	return false
}

// Lambda returns the current capacity price.
func (c *Channel) Lambda() float64 { return c.lambda }

// Mu returns the imbalance price for direction d.
func (c *Channel) Mu(d Direction) float64 { return c.dirs[d].mu }

// Price returns the routing price ξ for direction d (eq. 23):
// ξ_{a,b} = 2λ + μ_{a,b} − μ_{b,a}, floored at zero so a heavily
// counter-imbalanced channel is free rather than negatively priced.
func (c *Channel) Price(d Direction) float64 {
	p := 2*c.lambda + c.dirs[d].mu - c.dirs[d.Reverse()].mu
	if p < 0 {
		return 0
	}
	return p
}

// Fee returns the forwarding fee for direction d (eq. 24): T_fee·ξ.
func (c *Channel) Fee(d Direction, tFee float64) float64 {
	return tFee * c.Price(d)
}

// QueueLen returns the number of TUs waiting in direction d.
func (c *Channel) QueueLen(d Direction) int { return len(c.dirs[d].queue) }

// QueueValue returns the total value waiting in direction d (q_amount).
func (c *Channel) QueueValue(d Direction) float64 {
	total := 0.0
	for _, tu := range c.dirs[d].queue {
		total += tu.Value
	}
	return total
}

// Enqueue adds a TU to the waiting queue for direction d. It fails when the
// queue value limit would be exceeded or the channel is closed.
func (c *Channel) Enqueue(d Direction, tu *QueuedTU) error {
	if c.closed {
		return fmt.Errorf("channel: enqueue on closed channel %d", c.Edge)
	}
	if tu == nil || tu.Value <= 0 {
		return fmt.Errorf("channel: invalid TU")
	}
	if c.QueueLimit > 0 && c.QueueValue(d)+tu.Value > c.QueueLimit {
		return fmt.Errorf("channel: queue limit %v exceeded", c.QueueLimit)
	}
	c.dirs[d].queue = append(c.dirs[d].queue, tu)
	return nil
}

// Dequeue removes and returns the scheduler-chosen TU from direction d, or
// nil when the queue is empty.
func (c *Channel) Dequeue(d Direction, s Scheduler) *QueuedTU {
	q := c.dirs[d].queue
	if len(q) == 0 {
		return nil
	}
	i := s.Next(q)
	if i < 0 || i >= len(q) {
		i = 0
	}
	tu := q[i]
	c.dirs[d].queue = append(q[:i], q[i+1:]...)
	return tu
}

// MarkStale marks TUs whose queueing delay exceeds threshold at time now
// and returns them; marked TUs stay queued (hubs "do not process the packet
// and merely forward it" — the caller decides to abort).
func (c *Channel) MarkStale(d Direction, now, threshold float64) []*QueuedTU {
	var marked []*QueuedTU
	for _, tu := range c.dirs[d].queue {
		if !tu.Marked && now-tu.Enqueued > threshold {
			tu.Marked = true
			marked = append(marked, tu)
		}
	}
	return marked
}

// Queued returns a snapshot of direction d's waiting queue in queue order.
// Callers use it to unwind queued TUs when a channel closes; the returned
// slice is a copy, safe against concurrent RemoveQueued calls during
// iteration.
func (c *Channel) Queued(d Direction) []*QueuedTU {
	return append([]*QueuedTU(nil), c.dirs[d].queue...)
}

// RemoveQueued removes a specific TU (by pointer) from direction d's queue.
// It reports whether the TU was present.
func (c *Channel) RemoveQueued(d Direction, tu *QueuedTU) bool {
	q := c.dirs[d].queue
	for i, x := range q {
		if x == tu {
			c.dirs[d].queue = append(q[:i], q[i+1:]...)
			return true
		}
	}
	return false
}

// Imbalance returns |balance_fwd - balance_rev| / capacity in [0,1]; 0 is
// perfectly balanced. Reported as a load-balance metric.
func (c *Channel) Imbalance() float64 {
	cap := c.Capacity()
	if cap == 0 {
		return 0
	}
	return math.Abs(c.dirs[0].balance-c.dirs[1].balance) / cap
}
