package channel

import (
	"math"
	"testing"
)

func TestCloseBlocksNewForwards(t *testing.T) {
	c := newChan(t, 100, 100)
	if err := c.Lock(Fwd, 30); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if !c.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if c.CanForward(Fwd, 1) || c.CanForward(Rev, 1) {
		t.Fatal("closed channel still forwards")
	}
	if err := c.Lock(Fwd, 1); err == nil {
		t.Fatal("Lock succeeded on closed channel")
	}
	if err := c.Enqueue(Fwd, &QueuedTU{ID: 1, Value: 5}); err == nil {
		t.Fatal("Enqueue succeeded on closed channel")
	}
	if err := c.Deposit(Fwd, 10); err == nil {
		t.Fatal("Deposit succeeded on closed channel")
	}
	if c.Rebalance(1) != 0 {
		t.Fatal("Rebalance moved funds on closed channel")
	}
	// In-flight HTLCs remain settleable: on-chain enforceable.
	if err := c.Settle(Fwd, 30); err != nil {
		t.Fatalf("settle of pre-close lock failed: %v", err)
	}
	if c.Balance(Rev) != 130 {
		t.Fatalf("Rev balance = %v, want 130", c.Balance(Rev))
	}
	c.Close() // idempotent
}

func TestCloseAllowsRefund(t *testing.T) {
	c := newChan(t, 50, 0)
	if err := c.Lock(Fwd, 20); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Refund(Fwd, 20); err != nil {
		t.Fatalf("refund of pre-close lock failed: %v", err)
	}
	if c.Balance(Fwd) != 50 {
		t.Fatalf("Fwd balance = %v, want 50", c.Balance(Fwd))
	}
}

func TestDeposit(t *testing.T) {
	c := newChan(t, 10, 20)
	if err := c.Deposit(Fwd, 5); err != nil {
		t.Fatal(err)
	}
	if c.Balance(Fwd) != 15 {
		t.Fatalf("Fwd balance = %v, want 15", c.Balance(Fwd))
	}
	if err := c.Deposit(Rev, -1); err == nil {
		t.Fatal("negative deposit succeeded")
	}
	if c.Capacity() != 35 {
		t.Fatalf("capacity = %v, want 35", c.Capacity())
	}
}

func TestRebalance(t *testing.T) {
	c := newChan(t, 80, 20)
	moved := c.Rebalance(1) // full rebalance: both sides at 50
	if moved != 30 {
		t.Fatalf("moved = %v, want 30", moved)
	}
	if c.Balance(Fwd) != 50 || c.Balance(Rev) != 50 {
		t.Fatalf("balances = %v/%v, want 50/50", c.Balance(Fwd), c.Balance(Rev))
	}
	if c.Imbalance() != 0 {
		t.Fatalf("imbalance = %v, want 0", c.Imbalance())
	}
	// Partial rebalance from the Rev-rich side.
	c2 := newChan(t, 0, 40)
	if moved := c2.Rebalance(0.5); moved != 10 {
		t.Fatalf("moved = %v, want 10", moved)
	}
	if c2.Balance(Fwd) != 10 || c2.Balance(Rev) != 30 {
		t.Fatalf("balances = %v/%v, want 10/30", c2.Balance(Fwd), c2.Balance(Rev))
	}
	// Funds are conserved.
	if got := c2.Capacity(); math.Abs(got-40) > 1e-12 {
		t.Fatalf("capacity drifted to %v", got)
	}
	// Out-of-range fractions are no-ops.
	if c2.Rebalance(0) != 0 || c2.Rebalance(1.5) != 0 {
		t.Fatal("invalid fraction moved funds")
	}
}

func TestQueuedSnapshot(t *testing.T) {
	c := newChan(t, 0, 0) // no funds: everything queues
	a := &QueuedTU{ID: 1, Value: 2}
	b := &QueuedTU{ID: 2, Value: 3}
	if err := c.Enqueue(Fwd, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(Fwd, b); err != nil {
		t.Fatal(err)
	}
	snap := c.Queued(Fwd)
	if len(snap) != 2 || snap[0] != a || snap[1] != b {
		t.Fatalf("snapshot = %v", snap)
	}
	// Mutating the queue does not invalidate the snapshot slice.
	if !c.RemoveQueued(Fwd, a) {
		t.Fatal("RemoveQueued failed")
	}
	if len(snap) != 2 {
		t.Fatal("snapshot aliased the live queue")
	}
	if c.QueueLen(Fwd) != 1 {
		t.Fatalf("queue len = %d, want 1", c.QueueLen(Fwd))
	}
}
