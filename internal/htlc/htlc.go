// Package htlc implements the hash time lock contract (HTLC) state machine
// that secures multi-hop payments in PCNs (§II-A): an intermediary can claim
// the funds locked for it on the upstream channel only by revealing the
// preimage it learned when paying downstream, and locks expire after a
// bounded time so funds cannot be held hostage.
package htlc

import (
	"crypto/sha256"
	"fmt"
)

// State of a contract.
type State int

// Contract states.
const (
	Pending State = iota + 1
	Settled
	Failed
	Expired
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Settled:
		return "settled"
	case Failed:
		return "failed"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Contract is one hash time locked conditional payment.
type Contract struct {
	Hash   [32]byte
	Amount float64
	// Expiry is the absolute simulation time after which the lock lapses.
	Expiry float64
	state  State
}

// NewPreimage derives a preimage from a payment identifier; tests and the
// simulator use deterministic preimages keyed by TU id.
func NewPreimage(id uint64) [32]byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (8 * i))
	}
	return sha256.Sum256(b[:])
}

// LockHash returns the hash lock for a preimage.
func LockHash(preimage [32]byte) [32]byte {
	return sha256.Sum256(preimage[:])
}

// Offer creates a pending contract for the given amount, expiring at expiry.
func Offer(hash [32]byte, amount, expiry float64) (*Contract, error) {
	if amount <= 0 {
		return nil, fmt.Errorf("htlc: amount must be positive, got %v", amount)
	}
	return &Contract{Hash: hash, Amount: amount, Expiry: expiry, state: Pending}, nil
}

// State returns the current state.
func (c *Contract) State() State { return c.state }

// Settle claims the contract by revealing the preimage at time now. It
// fails if the preimage does not hash to the lock, if the contract is not
// pending, or if the lock has expired.
func (c *Contract) Settle(preimage [32]byte, now float64) error {
	if c.state != Pending {
		return fmt.Errorf("htlc: settle on %v contract", c.state)
	}
	if now > c.Expiry {
		c.state = Expired
		return fmt.Errorf("htlc: lock expired at %v (now %v)", c.Expiry, now)
	}
	if LockHash(preimage) != c.Hash {
		return fmt.Errorf("htlc: preimage does not match lock")
	}
	c.state = Settled
	return nil
}

// Fail cancels the contract cooperatively (e.g., downstream failure),
// releasing the locked funds back to the offerer.
func (c *Contract) Fail() error {
	if c.state != Pending {
		return fmt.Errorf("htlc: fail on %v contract", c.state)
	}
	c.state = Failed
	return nil
}

// ExpireIfDue transitions a pending contract to Expired when now is past
// the lock time. It reports whether the contract is (now) expired.
func (c *Contract) ExpireIfDue(now float64) bool {
	if c.state == Pending && now > c.Expiry {
		c.state = Expired
	}
	return c.state == Expired
}

// Chain is an ordered set of per-hop contracts for one multi-hop payment.
// Expiries must decrease along the path (each upstream hop needs time to
// claim after learning the preimage downstream).
type Chain struct {
	Hops []*Contract
}

// NewChain creates per-hop contracts for a payment of `amount` over
// `hops` hops, starting from finalExpiry at the recipient and adding delta
// per upstream hop.
func NewChain(hash [32]byte, amount float64, hops int, finalExpiry, delta float64) (*Chain, error) {
	if hops < 1 {
		return nil, fmt.Errorf("htlc: chain needs >= 1 hop, got %d", hops)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("htlc: delta must be positive, got %v", delta)
	}
	ch := &Chain{Hops: make([]*Contract, hops)}
	for i := 0; i < hops; i++ {
		// Hop 0 is the sender's outgoing lock, the last hop pays the
		// recipient; later hops expire sooner.
		expiry := finalExpiry + float64(hops-1-i)*delta
		c, err := Offer(hash, amount, expiry)
		if err != nil {
			return nil, err
		}
		ch.Hops[i] = c
	}
	return ch, nil
}

// SettleAll unwinds the chain from the recipient backwards with the
// preimage, as the real protocol does. All hops must settle for the
// payment to be atomic; the first failure aborts and fails the remaining
// (upstream) pending hops.
func (ch *Chain) SettleAll(preimage [32]byte, now float64) error {
	for i := len(ch.Hops) - 1; i >= 0; i-- {
		if err := ch.Hops[i].Settle(preimage, now); err != nil {
			for j := i; j >= 0; j-- {
				if ch.Hops[j].State() == Pending {
					// Cooperative unwind of the not-yet-settled hops.
					if ferr := ch.Hops[j].Fail(); ferr != nil {
						return fmt.Errorf("htlc: unwind: %w", ferr)
					}
				}
			}
			return fmt.Errorf("htlc: hop %d: %w", i, err)
		}
	}
	return nil
}

// Settled reports whether every hop settled.
func (ch *Chain) Settled() bool {
	for _, c := range ch.Hops {
		if c.State() != Settled {
			return false
		}
	}
	return true
}
