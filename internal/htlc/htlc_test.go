package htlc

import (
	"strings"
	"testing"
)

func TestOfferValidation(t *testing.T) {
	pre := NewPreimage(1)
	if _, err := Offer(LockHash(pre), 0, 10); err == nil {
		t.Fatal("expected error for zero amount")
	}
	if _, err := Offer(LockHash(pre), -5, 10); err == nil {
		t.Fatal("expected error for negative amount")
	}
}

func TestSettleHappyPath(t *testing.T) {
	pre := NewPreimage(7)
	c, err := Offer(LockHash(pre), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != Pending {
		t.Fatalf("state = %v", c.State())
	}
	if err := c.Settle(pre, 9); err != nil {
		t.Fatal(err)
	}
	if c.State() != Settled {
		t.Fatalf("state = %v", c.State())
	}
}

func TestSettleWrongPreimage(t *testing.T) {
	c, err := Offer(LockHash(NewPreimage(1)), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(NewPreimage(2), 5); err == nil {
		t.Fatal("wrong preimage settled")
	}
	if c.State() != Pending {
		t.Fatalf("failed settle should leave contract pending, got %v", c.State())
	}
}

func TestSettleAfterExpiry(t *testing.T) {
	pre := NewPreimage(3)
	c, err := Offer(LockHash(pre), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(pre, 11); err == nil {
		t.Fatal("expired lock settled")
	}
	if c.State() != Expired {
		t.Fatalf("state = %v, want expired", c.State())
	}
}

func TestDoubleSettleRejected(t *testing.T) {
	pre := NewPreimage(4)
	c, err := Offer(LockHash(pre), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(pre, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(pre, 2); err == nil {
		t.Fatal("double settle allowed")
	}
}

func TestFail(t *testing.T) {
	c, err := Offer(LockHash(NewPreimage(5)), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(); err != nil {
		t.Fatal(err)
	}
	if c.State() != Failed {
		t.Fatalf("state = %v", c.State())
	}
	if err := c.Fail(); err == nil {
		t.Fatal("double fail allowed")
	}
}

func TestExpireIfDue(t *testing.T) {
	c, err := Offer(LockHash(NewPreimage(6)), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.ExpireIfDue(9) {
		t.Fatal("expired early")
	}
	if !c.ExpireIfDue(10.5) {
		t.Fatal("did not expire when due")
	}
	if c.State() != Expired {
		t.Fatalf("state = %v", c.State())
	}
}

func TestChainExpiryOrdering(t *testing.T) {
	pre := NewPreimage(9)
	ch, err := NewChain(LockHash(pre), 3, 4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Expiries decrease along the path: hop 0 (sender side) latest.
	for i := 1; i < len(ch.Hops); i++ {
		if ch.Hops[i].Expiry >= ch.Hops[i-1].Expiry {
			t.Fatalf("expiries not decreasing: hop %d %v >= hop %d %v",
				i, ch.Hops[i].Expiry, i-1, ch.Hops[i-1].Expiry)
		}
	}
	if ch.Hops[3].Expiry != 10 {
		t.Fatalf("recipient hop expiry = %v, want 10", ch.Hops[3].Expiry)
	}
}

func TestChainSettleAll(t *testing.T) {
	pre := NewPreimage(10)
	ch, err := NewChain(LockHash(pre), 2, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.SettleAll(pre, 5); err != nil {
		t.Fatal(err)
	}
	if !ch.Settled() {
		t.Fatal("chain not fully settled")
	}
}

func TestChainSettleAllLateUnwinds(t *testing.T) {
	pre := NewPreimage(11)
	ch, err := NewChain(LockHash(pre), 2, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Recipient hop expires at 10; settle attempt at 10.5 fails and
	// unwinds.
	err = ch.SettleAll(pre, 10.5)
	if err == nil {
		t.Fatal("late settle succeeded")
	}
	if !strings.Contains(err.Error(), "expired") {
		t.Fatalf("unexpected error: %v", err)
	}
	if ch.Settled() {
		t.Fatal("chain reports settled after failure")
	}
	// Upstream hops must not remain pending.
	for i, c := range ch.Hops {
		if c.State() == Pending {
			t.Fatalf("hop %d left pending", i)
		}
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain(LockHash(NewPreimage(1)), 1, 0, 10, 1); err == nil {
		t.Fatal("expected error for 0 hops")
	}
	if _, err := NewChain(LockHash(NewPreimage(1)), 1, 2, 10, 0); err == nil {
		t.Fatal("expected error for zero delta")
	}
}

func TestPreimageDeterminism(t *testing.T) {
	if NewPreimage(42) != NewPreimage(42) {
		t.Fatal("preimages not deterministic")
	}
	if NewPreimage(1) == NewPreimage(2) {
		t.Fatal("distinct ids collided")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Pending: "pending", Settled: "settled", Failed: "failed", Expired: "expired"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
